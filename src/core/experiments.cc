#include "core/experiments.hh"

#include <vector>

#include "core/dma_workloads.hh"
#include "sim/logging.hh"

namespace cellbw::core
{

const char *
toString(DmaOp op)
{
    switch (op) {
      case DmaOp::Get:
        return "GET";
      case DmaOp::Put:
        return "PUT";
      case DmaOp::Copy:
        return "GET+PUT";
    }
    return "?";
}

const char *
toString(ppe::MemOp op)
{
    switch (op) {
      case ppe::MemOp::Load:
        return "load";
      case ppe::MemOp::Store:
        return "store";
      case ppe::MemOp::Copy:
        return "copy";
    }
    return "?";
}

/* ------------------------------------------------------------------ */
/*  PPE experiments                                                     */
/* ------------------------------------------------------------------ */

PpeStreamConfig
ppeL1Config(unsigned threads, unsigned elem, ppe::MemOp op)
{
    PpeStreamConfig cfg;
    cfg.threads = threads;
    cfg.elemSize = elem;
    cfg.op = op;
    // Two threads and (for copy) two buffers must all fit the 32 KB L1.
    cfg.bufferBytes = (op == ppe::MemOp::Copy) ? 6 * util::KiB
                                               : 12 * util::KiB;
    cfg.totalBytes = 4 * util::MiB;
    return cfg;
}

PpeStreamConfig
ppeL2Config(unsigned threads, unsigned elem, ppe::MemOp op)
{
    PpeStreamConfig cfg;
    cfg.threads = threads;
    cfg.elemSize = elem;
    cfg.op = op;
    cfg.bufferBytes = (op == ppe::MemOp::Copy) ? 80 * util::KiB
                                               : 160 * util::KiB;
    cfg.totalBytes = 4 * util::MiB;
    return cfg;
}

PpeStreamConfig
ppeMemConfig(unsigned threads, unsigned elem, ppe::MemOp op)
{
    PpeStreamConfig cfg;
    cfg.threads = threads;
    cfg.elemSize = elem;
    cfg.op = op;
    cfg.bufferBytes = 8 * util::MiB;
    cfg.totalBytes = 8 * util::MiB;
    return cfg;
}

namespace
{

sim::Task
ppeDriver(ppe::Ppu &ppu, unsigned tid, EffAddr src, EffAddr dst,
          std::uint64_t bytes, unsigned elem, ppe::MemOp op,
          std::uint64_t reps, std::uint64_t *counted)
{
    for (std::uint64_t r = 0; r < reps; ++r)
        co_await ppu.streamAccess(tid, src, dst, bytes, elem, op, counted);
}

} // namespace

double
runPpeStream(cell::CellSystem &sys, const PpeStreamConfig &cfg)
{
    if (cfg.threads < 1 || cfg.threads > ppe::Ppu::numThreads)
        sim::fatal("PPE experiment needs 1 or 2 threads");

    auto &ppu = sys.ppu();
    std::uint64_t reps =
        std::max<std::uint64_t>(1, cfg.totalBytes / cfg.bufferBytes);
    std::uint64_t counted = 0;

    Tick t0 = sys.now();
    for (unsigned tid = 0; tid < cfg.threads; ++tid) {
        EffAddr src = sys.malloc(cfg.bufferBytes);
        EffAddr dst = src;
        if (cfg.op == ppe::MemOp::Copy)
            dst = sys.malloc(cfg.bufferBytes);
        // Warm-up lap, as the paper always performs.
        ppu.warm(src, cfg.bufferBytes);
        if (dst != src)
            ppu.warm(dst, cfg.bufferBytes);
        sys.launch(ppeDriver(ppu, tid, src, dst, cfg.bufferBytes,
                             cfg.elemSize, cfg.op, reps, &counted));
    }
    sys.run();
    return sys.clock().bandwidthGBps(counted, sys.now() - t0);
}

/* ------------------------------------------------------------------ */
/*  SPU <-> LS                                                          */
/* ------------------------------------------------------------------ */

namespace
{

sim::Task
spuLsDriver(spe::Spu &spu, LsAddr src, LsAddr dst, std::uint32_t bytes,
            unsigned elem, ppe::MemOp op, std::uint64_t reps)
{
    for (std::uint64_t r = 0; r < reps; ++r) {
        switch (op) {
          case ppe::MemOp::Load:
            co_await spu.streamLoad(src, bytes, elem);
            break;
          case ppe::MemOp::Store:
            co_await spu.streamStore(src, bytes, elem);
            break;
          case ppe::MemOp::Copy:
            co_await spu.streamCopy(src, dst, bytes, elem);
            break;
        }
    }
}

} // namespace

double
runSpuLs(cell::CellSystem &sys, const SpuLsConfig &cfg)
{
    auto &s = sys.spe(0);
    const std::uint32_t buf = 96 * util::KiB;
    LsAddr src = s.lsAlloc(buf);
    LsAddr dst = (cfg.op == ppe::MemOp::Copy) ? s.lsAlloc(buf) : src;
    std::uint64_t reps = std::max<std::uint64_t>(1, cfg.totalBytes / buf);

    Tick t0 = sys.now();
    sys.launch(spuLsDriver(s.spu(), src, dst, buf, cfg.elemSize, cfg.op,
                           reps));
    sys.run();
    std::uint64_t counted = reps * buf;
    if (cfg.op == ppe::MemOp::Copy)
        counted *= 2;
    return sys.clock().bandwidthGBps(counted, sys.now() - t0);
}

/* ------------------------------------------------------------------ */
/*  SPE <-> main memory                                                 */
/* ------------------------------------------------------------------ */

double
runSpeMem(cell::CellSystem &sys, const SpeMemConfig &cfg)
{
    if (cfg.numSpes == 0 || cfg.numSpes > sys.numSpes())
        sim::fatal("SPE-to-memory experiment: bad SPE count %u",
                   cfg.numSpes);

    Tick t0 = sys.now();
    for (unsigned i = 0; i < cfg.numSpes; ++i) {
        auto &s = sys.spe(i);
        EffAddr src = sys.malloc(cfg.bytesPerSpe);
        if (cfg.op == DmaOp::Copy) {
            EffAddr dst = sys.malloc(cfg.bytesPerSpe);
            LsAddr ls = s.lsAlloc(128 * util::KiB);
            sys.launch(dmaCopyStream(sys, i, src, dst, cfg.bytesPerSpe,
                                     cfg.elemBytes, cfg.useList, ls, 4));
        } else {
            StreamSpec spec;
            spec.speIndex = i;
            spec.dir = (cfg.op == DmaOp::Get) ? spe::DmaDir::Get
                                              : spe::DmaDir::Put;
            spec.base = src;
            spec.totalBytes = cfg.bytesPerSpe;
            spec.elemBytes = cfg.elemBytes;
            spec.useList = cfg.useList;
            spec.tag = 0;
            spec.lsBase = s.lsAlloc(64 * util::KiB);
            spec.lsBytes = 64 * util::KiB;
            spec.sync.every = cfg.syncEvery;
            sys.launch(dmaStream(sys, spec));
        }
    }
    sys.run();

    std::uint64_t counted = cfg.bytesPerSpe * cfg.numSpes;
    if (cfg.op == DmaOp::Copy)
        counted *= 2;
    return sys.clock().bandwidthGBps(counted, sys.now() - t0);
}

/* ------------------------------------------------------------------ */
/*  SPE <-> SPE                                                         */
/* ------------------------------------------------------------------ */

double
runSpeSpe(cell::CellSystem &sys, const SpeSpeConfig &cfg)
{
    if (cfg.numSpes < 2 || cfg.numSpes > sys.numSpes() ||
        cfg.numSpes % 2 != 0) {
        sim::fatal("SPE-to-SPE experiment: SPE count must be even and "
                   "2..%u, got %u", sys.numSpes(), cfg.numSpes);
    }

    constexpr std::uint32_t region = 64 * util::KiB;
    // Identical LS layout on every SPE: a region peers GET from (and
    // our PUT stream reads), a region peers PUT into, and a landing
    // region for our own GETs.
    LsAddr src_base = 0, rx_base = 0, land_base = 0;
    for (unsigned i = 0; i < cfg.numSpes; ++i) {
        auto &s = sys.spe(i);
        src_base = s.lsAlloc(region);
        rx_base = s.lsAlloc(region);
        land_base = s.lsAlloc(region);
    }

    unsigned n_active = 0;
    Tick t0 = sys.now();
    for (unsigned i = 0; i < cfg.numSpes; ++i) {
        bool active = (cfg.mode == SpeSpeMode::Cycle) || (i % 2 == 0);
        if (!active)
            continue;
        unsigned peer = (cfg.mode == SpeSpeMode::Cycle)
                            ? (i + 1) % cfg.numSpes
                            : i + 1;
        ++n_active;

        // One program issuing GETs and PUTs alternately, as the paper's
        // kernels do ("we perform both read and write at the same
        // time") — neither direction may monopolize the command queue.
        DuplexSpec d;
        d.speIndex = i;
        d.getBase = sys.lsEa(peer, src_base);
        d.putBase = sys.lsEa(peer, rx_base);
        d.bytesPerDir = cfg.bytesPerStream;
        d.elemBytes = cfg.elemBytes;
        d.useList = cfg.useList;
        d.syncEvery = cfg.syncEvery;
        d.getLsBase = land_base;
        d.putLsBase = src_base;
        d.lsBytes = region;
        d.eaWindow = region;
        sys.launch(dmaDuplexStream(sys, d));
    }
    sys.run();

    std::uint64_t counted = 2ull * cfg.bytesPerStream * n_active;
    return sys.clock().bandwidthGBps(counted, sys.now() - t0);
}

/* ------------------------------------------------------------------ */
/*  Random access                                                       */
/* ------------------------------------------------------------------ */

namespace
{

/** Address-stream seed for logical SPE @p i of this run. */
std::uint64_t
streamSeed(const cell::CellSystem &sys, unsigned i)
{
    return (sys.placementSeed() + 1) * 0xD1B54A32D192ED03ull ^
           ((i + 1) * 0x9E3779B97F4A7C15ull);
}

} // namespace

double
runRandGups(cell::CellSystem &sys, const RandGupsConfig &cfg)
{
    if (cfg.numSpes == 0 || cfg.numSpes > sys.numSpes())
        sim::fatal("GUPS experiment: bad SPE count %u", cfg.numSpes);

    // Update count independent of the granule so the elem sweep costs
    // the same simulated work at every point.
    const std::uint64_t updates =
        std::max<std::uint64_t>(1, cfg.bytesPerSpe / 256);

    Tick t0 = sys.now();
    for (unsigned i = 0; i < cfg.numSpes; ++i) {
        auto &s = sys.spe(i);
        RandomUpdateSpec spec;
        spec.speIndex = i;
        spec.tableBase = sys.malloc(cfg.tableBytes);
        spec.tableBytes = cfg.tableBytes;
        spec.updates = updates;
        spec.elemBytes = cfg.elemBytes;
        spec.seed = streamSeed(sys, i);
        spec.slots = cfg.slots;
        spec.lsBase = s.lsAlloc(4 * util::KiB);
        sys.launch(randomUpdateStream(sys, spec));
    }
    sys.run();

    std::uint64_t counted = 2ull * updates * cfg.elemBytes * cfg.numSpes;
    return sys.clock().bandwidthGBps(counted, sys.now() - t0);
}

double
runRandChase(cell::CellSystem &sys, const RandChaseConfig &cfg)
{
    if (cfg.numSpes == 0 || cfg.numSpes > sys.numSpes())
        sim::fatal("chase experiment: bad SPE count %u", cfg.numSpes);

    // Fixed gathered volume per SPE, rounded to whole elements.
    std::uint64_t total = cfg.bytesPerSpe / 16;
    total = std::max<std::uint64_t>(
        cfg.elemBytes, total - total % cfg.elemBytes);

    Tick t0 = sys.now();
    std::uint64_t counted = 0;
    for (unsigned i = 0; i < cfg.numSpes; ++i) {
        auto &s = sys.spe(i);
        RandomGatherSpec spec;
        spec.speIndex = i;
        spec.tableBase = sys.malloc(cfg.tableBytes);
        spec.tableBytes = cfg.tableBytes;
        spec.totalBytes = total;
        spec.elemBytes = cfg.elemBytes;
        spec.useList = cfg.useList;
        spec.elemsPerList = cfg.elemsPerList;
        spec.seed = streamSeed(sys, i);
        spec.tag = 0;
        spec.lsBase = s.lsAlloc(64 * util::KiB);
        spec.lsBytes = 64 * util::KiB;
        spec.slots = cfg.slots;
        counted += total;
        sys.launch(randomGatherStream(sys, spec));
    }
    sys.run();
    return sys.clock().bandwidthGBps(counted, sys.now() - t0);
}

} // namespace cellbw::core
