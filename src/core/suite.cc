#include "core/suite.hh"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/experiment_registry.hh"
#include "core/result_cache.hh"
#include "core/worker_pool.hh"
#include "stats/json_writer.hh"
#include "util/file.hh"
#include "util/strings.hh"

namespace cellbw::core
{

namespace
{

struct ManifestEntry
{
    const Experiment *experiment = nullptr;
    std::vector<std::string> flags;
};

bool
resolveManifest(const std::string &manifest,
                std::vector<ManifestEntry> &entries, std::string &suiteId,
                std::string &err)
{
    auto &registry = ExperimentRegistry::instance();
    if (manifest == "ci") {
        // The built-in campaign: every registered sim experiment with
        // its default flags (callers narrow with forwarded flags like
        // --quick).  Native experiments are excluded by design: the
        // suite's warm-replay contract is byte-identical cache hits,
        // which measurements can never satisfy — run them explicitly
        // or through a manifest file.
        suiteId = "ci";
        for (const Experiment *e : registry.sorted()) {
            if (e->backend == Backend::Sim)
                entries.push_back({e, {}});
        }
        return true;
    }

    std::string text;
    if (!util::readFile(manifest, text)) {
        err = util::format(
            "cannot read manifest '%s' (not a file, and not a "
            "built-in manifest name)",
            manifest.c_str());
        return false;
    }
    suiteId = std::filesystem::path(manifest).stem().string();

    std::istringstream lines(text);
    std::string line;
    unsigned lineNo = 0;
    while (std::getline(lines, line)) {
        ++lineNo;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream tokens(line);
        std::string name;
        if (!(tokens >> name))
            continue;
        const Experiment *e = registry.find(name);
        if (!e) {
            err = util::format("%s:%u: unknown experiment '%s'",
                               manifest.c_str(), lineNo, name.c_str());
            return false;
        }
        ManifestEntry entry;
        entry.experiment = e;
        std::string flag;
        while (tokens >> flag)
            entry.flags.push_back(std::move(flag));
        entries.push_back(std::move(entry));
    }
    if (entries.empty()) {
        err = util::format("manifest '%s' selects no experiments",
                           manifest.c_str());
        return false;
    }
    return true;
}

/** What one experiment left behind, for suite.json and the summary. */
struct EntryResult
{
    std::string name;
    std::string key;
    std::string error;      // empty on success
    bool hit = false;
};

void
runEntry(const SuiteSpec &spec, const std::string &suiteId,
         const ManifestEntry &entry, ResultCache &cache, WorkerPool &pool,
         EntryResult &result, std::mutex &outMutex)
{
    const Experiment &e = *entry.experiment;
    result.name = e.name;
    const std::string reportName = e.name + ".json";
    const std::string outPath = spec.outDir + "/" + reportName;

    std::vector<std::string> args;
    args.push_back(e.name);                 // argv[0], skipped by parse
    for (const auto &f : entry.flags)
        args.push_back(f);
    for (const auto &f : spec.forward)
        args.push_back(f);
    args.push_back("--json");
    args.push_back(outPath);
    std::vector<const char *> argv;
    argv.reserve(args.size());
    for (const auto &a : args)
        argv.push_back(a.c_str());

    ExperimentContext ctx(e.name, e.description, e.backend);
    ctx.setQuiet(true);
    ctx.setSuite(suiteId);
    if (!ctx.parse(static_cast<int>(argv.size()), argv.data())) {
        result.error = "flag parse failed";
        return;
    }
    result.key = ctx.cacheKey();

    auto progress = [&](const std::string &line) {
        if (spec.terse)
            return;
        std::lock_guard<std::mutex> lock(outMutex);
        std::fputs(line.c_str(), stdout);
        std::fflush(stdout);
    };

    // Native measurements never hit or populate the cache.
    if (spec.useCache && backendIsCacheable(e.backend)) {
        if (auto stored = cache.load(ctx.cacheKey(),
                                     ctx.cacheMaterial())) {
            if (!util::writeFileAtomic(outPath, *stored)) {
                result.error = "cannot write " + outPath;
                return;
            }
            result.hit = true;
            progress(util::format("  [hit ] %-20s %s -> %s\n",
                                  e.name.c_str(),
                                  ctx.cacheKey().c_str(),
                                  reportName.c_str()));
            return;
        }
        ctx.attachCache(&cache);
    }

    ctx.par.pool = &pool;
    auto started = std::chrono::steady_clock::now();
    int rc = 1;
    try {
        rc = e.body(ctx);
    } catch (const std::exception &ex) {
        result.error = ex.what();
        return;
    }
    if (rc != 0) {
        result.error = util::format("exit code %d", rc);
        return;
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - started)
                      .count();
    progress(util::format("  [run ] %-20s %s -> %s (%.1fs)\n",
                          e.name.c_str(), ctx.cacheKey().c_str(),
                          reportName.c_str(), secs));
}

/** The deterministic suite index: no timings, no hit/miss flags. */
std::string
renderSuiteIndex(const std::string &suiteId,
                 const std::vector<EntryResult> &results)
{
    stats::JsonWriter w;
    w.beginObject();
    w.key("schema").value("cellbw-suite-v1");
    w.key("suite").value(suiteId);
    w.key("salt").value(ResultCache::salt());
    w.key("experiments").beginArray();
    for (const auto &r : results) {
        w.beginObject();
        w.key("name").value(r.name);
        w.key("key").value(r.key);
        w.key("report").value(r.name + ".json");
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str() + "\n";
}

} // namespace

int
runSuite(const SuiteSpec &spec, SuiteOutcome *outcome)
{
    std::vector<ManifestEntry> entries;
    std::string suiteId, err;
    if (!resolveManifest(spec.manifest, entries, suiteId, err)) {
        std::fprintf(stderr, "cellbw suite: %s\n", err.c_str());
        return 2;
    }

    std::error_code ec;
    std::filesystem::create_directories(spec.outDir, ec);
    if (ec) {
        std::fprintf(stderr, "cellbw suite: cannot create %s: %s\n",
                     spec.outDir.c_str(), ec.message().c_str());
        return 2;
    }

    ResultCache cache(spec.cacheDir);
    WorkerPool pool(spec.jobs);
    std::mutex outMutex;
    std::vector<EntryResult> results(entries.size());

    std::printf("suite %s: %zu experiments, %u pool workers, cache %s"
                "%s\n",
                suiteId.c_str(), entries.size(), pool.workers(),
                spec.cacheDir.c_str(),
                spec.useCache ? "" : " (disabled)");

    // One coordinator thread per experiment; all of them feed their
    // seed-sweep runs into the one shared pool, so work batches
    // across experiments.
    std::vector<std::thread> coordinators;
    coordinators.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        coordinators.emplace_back([&, i] {
            runEntry(spec, suiteId, entries[i], cache, pool,
                     results[i], outMutex);
        });
    }
    for (auto &t : coordinators)
        t.join();

    SuiteOutcome counts;
    counts.selected = static_cast<unsigned>(entries.size());
    for (const auto &r : results) {
        if (!r.error.empty()) {
            ++counts.failures;
            std::fprintf(stderr, "cellbw suite: %s FAILED: %s\n",
                         r.name.c_str(), r.error.c_str());
        } else if (r.hit) {
            ++counts.cacheHits;
        } else {
            ++counts.ran;
        }
    }

    const std::string indexPath = spec.outDir + "/suite.json";
    if (!util::writeFileAtomic(indexPath,
                               renderSuiteIndex(suiteId, results))) {
        std::fprintf(stderr, "cellbw suite: cannot write %s\n",
                     indexPath.c_str());
        ++counts.failures;
    }

    if (spec.useCache && spec.cacheMaxBytes > 0) {
        auto pruned = cache.prune(spec.cacheMaxBytes);
        if (!spec.terse && pruned.evicted > 0)
            std::printf("suite %s: cache pruned %llu entries / %llu "
                        "bytes (budget %llu)\n",
                        suiteId.c_str(),
                        (unsigned long long)pruned.evicted,
                        (unsigned long long)pruned.evictedBytes,
                        (unsigned long long)spec.cacheMaxBytes);
    }

    std::printf("suite %s: cache hits: %u/%u, ran %u, failures %u; "
                "reports in %s\n",
                suiteId.c_str(), counts.cacheHits, counts.selected,
                counts.ran, counts.failures, spec.outDir.c_str());

    if (outcome)
        *outcome = counts;
    return counts.ok() ? 0 : 1;
}

} // namespace cellbw::core
