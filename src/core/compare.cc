#include "core/compare.hh"

#include <cmath>
#include <cstdlib>

#include "util/file.hh"
#include "util/json.hh"
#include "util/strings.hh"

namespace cellbw::core
{

namespace
{

using util::JsonValue;

bool
schemaOk(const JsonValue &doc, const char *which, std::string &err)
{
    const JsonValue *schema = doc.find("schema");
    if (!schema || !schema->isString()) {
        err = util::format("%s: missing schema field", which);
        return false;
    }
    const std::string &s = schema->str();
    if (s != "cellbw-bench-v1" && s != "cellbw-bench-v2" &&
        s != "cellbw-bench-v3") {
        err = util::format("%s: unsupported schema '%s'", which,
                           s.c_str());
        return false;
    }
    return true;
}

/** points grouped by table name, preserving document order. */
std::vector<std::pair<std::string, std::vector<const JsonValue *>>>
groupPoints(const JsonValue &doc)
{
    std::vector<std::pair<std::string, std::vector<const JsonValue *>>>
        out;
    const JsonValue *points = doc.find("points");
    if (!points || !points->isArray())
        return out;
    for (const JsonValue &p : points->array()) {
        const JsonValue *table = p.find("table");
        std::string name =
            table && table->isString() ? table->str() : "";
        auto it = out.begin();
        for (; it != out.end(); ++it) {
            if (it->first == name)
                break;
        }
        if (it == out.end()) {
            out.emplace_back(name, std::vector<const JsonValue *>{});
            it = out.end() - 1;
        }
        it->second.push_back(&p);
    }
    return out;
}

/** "results[3] (op=Get, elem=128B)" — identify a point in messages. */
std::string
pointLabel(const std::string &table, std::size_t idx,
           const JsonValue &point)
{
    std::string label = util::format("%s[%zu]", table.c_str(), idx);
    std::string ident;
    for (const auto &m : point.object()) {
        if (m.first == "table" || !m.second.isString())
            continue;
        if (!ident.empty())
            ident += ", ";
        ident += m.first + "=" + m.second.str();
    }
    if (!ident.empty())
        label += " (" + ident + ")";
    return label;
}

bool
withinTol(double candidate, double baseline, double tolPct)
{
    return std::abs(candidate - baseline) <=
           tolPct / 100.0 * std::abs(baseline) + 1e-12;
}

double
tolForColumn(const ComparePolicy &policy, const std::string &column)
{
    auto it = policy.columnTolPct.find(column);
    return it == policy.columnTolPct.end() ? policy.tolPct : it->second;
}

void
comparePoint(const std::string &table, std::size_t idx,
             const JsonValue &candidate, const JsonValue &baseline,
             const ComparePolicy &policy, CompareResult &out)
{
    ++out.pointsCompared;
    for (const auto &m : baseline.object()) {
        const std::string &column = m.first;
        if (column == "table")
            continue;
        const JsonValue *c = candidate.find(column);
        std::string label = pointLabel(table, idx, baseline);
        if (!c) {
            out.regressions.push_back(util::format(
                "%s: column '%s' missing from candidate",
                label.c_str(), column.c_str()));
            continue;
        }
        ++out.valuesCompared;
        if (m.second.isNumber() && c->isNumber()) {
            double tol = tolForColumn(policy, column);
            if (!withinTol(c->number(), m.second.number(), tol)) {
                out.regressions.push_back(util::format(
                    "%s: %s = %.6g, baseline %.6g (tolerance %.3g%%)",
                    label.c_str(), column.c_str(), c->number(),
                    m.second.number(), tol));
            }
        } else if (m.second.isString() && c->isString()) {
            if (m.second.str() != c->str()) {
                out.regressions.push_back(util::format(
                    "%s: %s = '%s', baseline '%s'", label.c_str(),
                    column.c_str(), c->str().c_str(),
                    m.second.str().c_str()));
            }
        } else {
            out.regressions.push_back(util::format(
                "%s: column '%s' changed type", label.c_str(),
                column.c_str()));
        }
    }
}

void
compareMetrics(const JsonValue &candidateDoc, const JsonValue &baselineDoc,
               const ComparePolicy &policy, CompareResult &out)
{
    const JsonValue *base = baselineDoc.find("metrics");
    if (!base || !base->isObject())
        return;
    const JsonValue *cand = candidateDoc.find("metrics");
    for (const auto &m : base->object()) {
        const JsonValue *c = cand ? cand->find(m.first) : nullptr;
        if (!c || !c->isNumber() || !m.second.isNumber()) {
            out.regressions.push_back(util::format(
                "metric '%s' missing from candidate",
                m.first.c_str()));
            continue;
        }
        ++out.metricsCompared;
        if (!withinTol(c->number(), m.second.number(),
                       policy.metricsTolPct)) {
            out.regressions.push_back(util::format(
                "metric '%s' = %.6g, baseline %.6g (tolerance "
                "%.3g%%)",
                m.first.c_str(), c->number(), m.second.number(),
                policy.metricsTolPct));
        }
    }
}

} // namespace

bool
compareReportTexts(const std::string &candidateText,
                   const std::string &baselineText,
                   const ComparePolicy &policy, CompareResult &out,
                   std::string &err)
{
    JsonValue candidate, baseline;
    std::string jsonErr;
    if (!JsonValue::parse(candidateText, candidate, jsonErr)) {
        err = "candidate: " + jsonErr;
        return false;
    }
    if (!JsonValue::parse(baselineText, baseline, jsonErr)) {
        err = "baseline: " + jsonErr;
        return false;
    }
    if (!schemaOk(candidate, "candidate", err) ||
        !schemaOk(baseline, "baseline", err)) {
        return false;
    }

    auto baseTables = groupPoints(baseline);
    auto candTables = groupPoints(candidate);
    auto candTable = [&](const std::string &name)
        -> const std::vector<const JsonValue *> * {
        for (const auto &t : candTables) {
            if (t.first == name)
                return &t.second;
        }
        return nullptr;
    };

    for (const auto &bt : baseTables) {
        const auto *ct = candTable(bt.first);
        if (!ct) {
            out.regressions.push_back(util::format(
                "table '%s' missing from candidate",
                bt.first.c_str()));
            continue;
        }
        if (ct->size() != bt.second.size()) {
            out.regressions.push_back(util::format(
                "table '%s': %zu points in baseline, %zu in "
                "candidate",
                bt.first.c_str(), bt.second.size(), ct->size()));
        }
        std::size_t n = std::min(ct->size(), bt.second.size());
        for (std::size_t i = 0; i < n; ++i) {
            comparePoint(bt.first, i, *(*ct)[i], *bt.second[i], policy,
                         out);
        }
    }

    if (policy.includeMetrics)
        compareMetrics(candidate, baseline, policy, out);
    return true;
}

bool
compareReportFiles(const std::string &candidatePath,
                   const std::string &baselinePath,
                   const ComparePolicy &policy, CompareResult &out,
                   std::string &err)
{
    std::string candidateText, baselineText;
    if (!util::readFile(candidatePath, candidateText)) {
        err = "cannot read " + candidatePath;
        return false;
    }
    if (!util::readFile(baselinePath, baselineText)) {
        err = "cannot read " + baselinePath;
        return false;
    }
    return compareReportTexts(candidateText, baselineText, policy, out,
                              err);
}

bool
parseColumnTols(const std::string &spec,
                std::map<std::string, double> &out, std::string &err)
{
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string entry = spec.substr(pos, comma - pos);
        std::size_t eq = entry.rfind('=');
        if (eq == std::string::npos || eq == 0) {
            err = "bad tolerance entry '" + entry +
                  "' (want name=pct)";
            return false;
        }
        std::string name = entry.substr(0, eq);
        std::string pct = util::trim(entry.substr(eq + 1));
        const char *begin = pct.c_str();
        char *end = nullptr;
        double v = std::strtod(begin, &end);
        if (pct.empty() || end != begin + pct.size() || v < 0) {
            err = "bad tolerance value in '" + entry + "'";
            return false;
        }
        out[name] = v;
        pos = comma + 1;
    }
    return true;
}

} // namespace cellbw::core
