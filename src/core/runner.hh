/**
 * @file
 * Repeated-run harness.
 *
 * "Since we expect physical resource layout to be a critical factor,
 * but the current API does not allow the programmer to control such
 * layout, we run all our experiments 10 times to test different logical
 * to physical SPE mappings" — the paper, Section 3.  repeatRuns() does
 * exactly that: N fresh systems, N placement seeds, one Distribution.
 *
 * The N runs are completely independent — each owns a private
 * CellSystem (event queue, RNG, memory model) — so repeatRuns() fans
 * them out over a worker-thread pool.  Samples are merged in seed order
 * regardless of which worker finished first, so the resulting
 * Distribution is bit-identical to a serial sweep: --jobs only changes
 * wall-clock time, never results.
 */

#ifndef CELLBW_CORE_RUNNER_HH
#define CELLBW_CORE_RUNNER_HH

#include <functional>
#include <string>

#include "cell/cell_system.hh"
#include "stats/distribution.hh"

namespace cellbw::util
{
class Options;
} // namespace cellbw::util

namespace cellbw::stats
{
class MetricsRegistry;
} // namespace cellbw::stats

namespace cellbw::core
{

struct RepeatSpec
{
    /** Placement-randomized repetitions (the paper uses 10). */
    unsigned runs = 10;

    /** Base seed; run i uses seed + i. */
    std::uint64_t seed = 42;

    /**
     * Discarded leading repetitions.  The warmup runs execute at seeds
     * [seed, seed + warmup) and their samples (and metrics) are thrown
     * away; the recorded runs then start at seed + warmup.  That gives
     * warmup a deterministic identity — (seed=s, warmup=w) records
     * exactly the samples of (seed=s+w, warmup=0) — which is why the
     * sim default stays 0: existing reports remain byte-identical.  On
     * the native backend warmup is what pulls buffers through the host
     * cache hierarchy before the first timed pass.
     */
    unsigned warmup = 0;

    /**
     * When set, every recorded run's CellSystem::snapshotMetrics()
     * accumulates into this registry after its body returns.  The
     * registry's counters are atomic and accumulation is commutative,
     * so the totals are identical for any --jobs value.
     */
    stats::MetricsRegistry *metrics = nullptr;

    /**
     * Register the repeat options (--runs/--seed/--warmup) on @p opts.
     * Every experiment used to copy-paste this block; the spec owns it
     * now.  @p defaultWarmup lets native contexts default to a warmed
     * first measurement while sim stays at 0.
     */
    static void registerOptions(util::Options &opts,
                                unsigned defaultWarmup = 0);

    /**
     * Populate from parsed options.  @return false (with @p err set)
     * when the values are invalid (--runs 0).
     */
    bool fromOptions(const util::Options &opts, std::string &err);
};

class WorkerPool;

/** How to spread the repeated runs across host threads. */
struct ParallelSpec
{
    /**
     * Worker threads for the seed sweep; 0 means
     * std::thread::hardware_concurrency().  1 runs inline with no
     * threads spawned.  Ignored when @ref pool is set.
     */
    unsigned jobs = 0;

    /**
     * When set, runs are submitted to this shared pool instead of
     * spawning per-call threads — the suite driver points every
     * experiment here so seed-sweeps batch ACROSS experiments.  The
     * caller blocks until its own runs complete; results stay
     * bit-identical (merge is in seed order either way).
     */
    WorkerPool *pool = nullptr;

    /** The worker count actually used for @p runs repetitions. */
    unsigned resolveJobs(unsigned runs) const;

    static ParallelSpec serial() { return ParallelSpec{1}; }
};

using ExperimentBody = std::function<double(cell::CellSystem &)>;

/**
 * Run @p body once per placement seed on a freshly constructed system
 * and collect the per-run GB/s samples.
 *
 * With @p par.jobs != 1 the runs execute concurrently, one CellSystem
 * per worker; @p body must therefore not mutate state shared between
 * invocations (all in-tree bodies only read their config and return a
 * bandwidth).  Output order is deterministic: sample i always comes
 * from seed + i.
 */
stats::Distribution repeatRuns(const cell::CellConfig &cfg,
                               const RepeatSpec &spec,
                               const ExperimentBody &body,
                               const ParallelSpec &par = {});

} // namespace cellbw::core

#endif // CELLBW_CORE_RUNNER_HH
