/**
 * @file
 * Repeated-run harness.
 *
 * "Since we expect physical resource layout to be a critical factor,
 * but the current API does not allow the programmer to control such
 * layout, we run all our experiments 10 times to test different logical
 * to physical SPE mappings" — the paper, Section 3.  repeatRuns() does
 * exactly that: N fresh systems, N placement seeds, one Distribution.
 */

#ifndef CELLBW_CORE_RUNNER_HH
#define CELLBW_CORE_RUNNER_HH

#include <functional>

#include "cell/cell_system.hh"
#include "stats/distribution.hh"

namespace cellbw::core
{

struct RepeatSpec
{
    /** Placement-randomized repetitions (the paper uses 10). */
    unsigned runs = 10;

    /** Base seed; run i uses seed + i. */
    std::uint64_t seed = 42;
};

using ExperimentBody = std::function<double(cell::CellSystem &)>;

/**
 * Run @p body once per placement seed on a freshly constructed system
 * and collect the per-run GB/s samples.
 */
stats::Distribution repeatRuns(const cell::CellConfig &cfg,
                               const RepeatSpec &spec,
                               const ExperimentBody &body);

} // namespace cellbw::core

#endif // CELLBW_CORE_RUNNER_HH
