/**
 * @file
 * Execution backends: where an experiment's kernels actually run.
 *
 * Every registered experiment executes on exactly one backend:
 *
 *  - `sim`: the cellsim Cell BE model.  Results are a pure function of
 *    the canonical configuration (the whole repo is built around that:
 *    bit-identical seed-sweep merges, the content-addressed result
 *    cache, byte-identical warm suite replays).
 *
 *  - `native`: the host memory hierarchy, measured with the same
 *    controlled-access-pattern methodology the paper applies to Cell
 *    (STREAM-shaped copy/scale/add/triad, pointer-chase latency).
 *    Results are *measurements* — reproducible in distribution, never
 *    bit-identical — so native reports are marked non-reproducible,
 *    are gated by `cellbw compare` tolerances instead of bit-identity,
 *    and are never stored in (or served from) the result cache.
 *
 * The backend is part of the canonical configuration: it appears in
 * the v3 report envelope and config section and in the result-cache
 * key material, so a sim config and a native config of the same
 * experiment name can never share a cache key.
 */

#ifndef CELLBW_CORE_BACKEND_HH
#define CELLBW_CORE_BACKEND_HH

#include <string>

namespace cellbw::core
{

enum class Backend
{
    Sim,    ///< the cellsim Cell BE model (deterministic)
    Native, ///< the host memory hierarchy (measured, non-reproducible)
};

/** Canonical flag/report spelling: "sim" or "native". */
const char *toString(Backend backend);

/**
 * Parse a --backend value.  @return false when @p text names no known
 * backend (callers report it with knownBackends()).
 */
bool parseBackend(const std::string &text, Backend &out);

/** "sim, native" — for the unknown-backend diagnostic. */
const char *knownBackends();

/**
 * True iff results from @p backend may be stored in and replayed from
 * the result cache.  Only deterministic backends qualify: replaying a
 * cached native measurement would present a stale number as fresh.
 */
bool backendIsCacheable(Backend backend);

} // namespace cellbw::core

#endif // CELLBW_CORE_BACKEND_HH
