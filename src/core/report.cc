#include "core/report.hh"

#include "stats/table.hh"
#include "util/strings.hh"

namespace cellbw::core
{

std::vector<std::uint32_t>
elemSweepSizes()
{
    std::vector<std::uint32_t> v;
    for (std::uint32_t s = 128; s <= 16 * 1024; s *= 2)
        v.push_back(s);
    return v;
}

std::vector<unsigned>
ppeElemSizes()
{
    return {1, 2, 4, 8, 16};
}

std::string
elemLabel(std::uint32_t bytes)
{
    if (bytes >= 1024 && bytes % 1024 == 0)
        return util::format("%uKiB", bytes / 1024);
    return util::format("%uB", bytes);
}

std::vector<std::string>
distCells(const stats::Distribution &d, bool full)
{
    if (!full)
        return {stats::Table::num(d.mean())};
    return {
        stats::Table::num(d.min()),
        stats::Table::num(d.max()),
        stats::Table::num(d.median()),
        stats::Table::num(d.mean()),
    };
}

std::vector<std::string>
distHeaders(bool full)
{
    if (!full)
        return {"GB/s"};
    return {"min", "max", "median", "mean"};
}

} // namespace cellbw::core
