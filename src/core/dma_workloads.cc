#include "core/dma_workloads.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "util/align.hh"

namespace cellbw::core
{

namespace
{

/** Tag mask covering @p count tags starting at @p first. */
std::uint32_t
maskOf(unsigned first, unsigned count)
{
    std::uint32_t m = 0;
    for (unsigned i = 0; i < count; ++i)
        m |= 1u << (first + i);
    return m;
}

/** Independent child seed for pipeline slot @p slot of @p base. */
std::uint64_t
slotSeed(std::uint64_t base, unsigned slot)
{
    return base ^ ((slot + 1) * 0x9E3779B97F4A7C15ull);
}

} // namespace

sim::Task
dmaStream(cell::CellSystem &sys, StreamSpec spec)
{
    auto &mfc = sys.spe(spec.speIndex).mfc();
    const std::uint32_t elem = spec.elemBytes;
    if (elem == 0 || spec.totalBytes % elem != 0)
        sim::fatal("dmaStream: totalBytes must be a multiple of elemBytes");
    const std::uint64_t window =
        spec.eaWindow ? spec.eaWindow : spec.totalBytes;

    unsigned since_sync = 0;

    if (!spec.useList) {
        unsigned slots = std::max<std::uint32_t>(
            1, std::min<std::uint32_t>(mfc.queueDepth() + 1,
                                       spec.lsBytes / elem));
        const std::uint32_t mask = 1u << spec.tag;
        const std::uint64_t n = spec.totalBytes / elem;
        for (std::uint64_t i = 0; i < n; ++i) {
            co_await mfc.queueSpace();
            LsAddr lsa = spec.lsBase +
                         static_cast<LsAddr>((i % slots) * elem);
            EffAddr ea = spec.base + (i * elem) % window;
            if (spec.dir == spe::DmaDir::Get)
                mfc.get(lsa, ea, elem, spec.tag);
            else
                mfc.put(lsa, ea, elem, spec.tag);
            if (spec.sync.every && ++since_sync >= spec.sync.every) {
                co_await mfc.tagWait(mask);
                since_sync = 0;
            }
        }
        co_await mfc.tagWait(mask);
        co_return;
    }

    // DMA-list mode: each command scatters/gathers a fixed byte count
    // as a list of elemBytes-sized elements.
    const std::uint32_t per_list = std::max<std::uint32_t>(
        1, std::min<std::uint32_t>(spe::maxListElements,
                                   listCommandBytes / elem));
    const std::uint32_t list_bytes = per_list * elem;
    const unsigned slots =
        std::max<std::uint32_t>(1, spec.lsBytes / list_bytes);
    const std::uint32_t mask = maskOf(spec.tag, slots);

    std::uint64_t issued = 0;
    std::uint64_t cmd = 0;
    while (issued < spec.totalBytes) {
        std::uint32_t this_cmd = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(list_bytes,
                                    spec.totalBytes - issued));
        std::vector<spe::ListElement> list;
        list.reserve(per_list);
        for (std::uint32_t off = 0; off < this_cmd; off += elem) {
            EffAddr ea = spec.base + (issued + off) % window;
            list.push_back({ea, elem});
        }
        co_await mfc.queueSpace();
        LsAddr lsa = spec.lsBase +
                     static_cast<LsAddr>((cmd % slots) * list_bytes);
        unsigned tag = spec.tag + static_cast<unsigned>(cmd % slots);
        if (spec.dir == spe::DmaDir::Get)
            mfc.getList(lsa, std::move(list), tag);
        else
            mfc.putList(lsa, std::move(list), tag);
        if (spec.sync.every && ++since_sync >= spec.sync.every) {
            co_await mfc.tagWait(mask);
            since_sync = 0;
        }
        issued += this_cmd;
        ++cmd;
    }
    co_await mfc.tagWait(mask);
}

sim::Task
dmaDuplexStream(cell::CellSystem &sys, DuplexSpec spec)
{
    auto &mfc = sys.spe(spec.speIndex).mfc();
    const std::uint32_t elem = spec.elemBytes;
    if (elem == 0 || spec.bytesPerDir % elem != 0)
        sim::fatal("dmaDuplexStream: bytesPerDir must be a multiple of "
                   "elemBytes");
    const std::uint64_t window =
        spec.eaWindow ? spec.eaWindow : spec.bytesPerDir;
    constexpr unsigned get_tag = 0;
    constexpr unsigned put_tag = 4;

    unsigned since_sync = 0;
    std::uint32_t all_mask = 0;

    if (!spec.useList) {
        unsigned slots = std::max<std::uint32_t>(
            1, std::min<std::uint32_t>(mfc.queueDepth() + 1,
                                       spec.lsBytes / elem));
        all_mask = (1u << get_tag) | (1u << put_tag);
        const std::uint64_t n = spec.bytesPerDir / elem;
        for (std::uint64_t i = 0; i < n; ++i) {
            LsAddr slot = static_cast<LsAddr>((i % slots) * elem);
            EffAddr off = (i * elem) % window;

            co_await mfc.queueSpace();
            mfc.get(spec.getLsBase + slot, spec.getBase + off, elem,
                    get_tag);
            if (spec.syncEvery && ++since_sync >= spec.syncEvery) {
                co_await mfc.tagWait(all_mask);
                since_sync = 0;
            }
            co_await mfc.queueSpace();
            mfc.put(spec.putLsBase + slot, spec.putBase + off, elem,
                    put_tag);
            if (spec.syncEvery && ++since_sync >= spec.syncEvery) {
                co_await mfc.tagWait(all_mask);
                since_sync = 0;
            }
        }
        co_await mfc.tagWait(all_mask);
        co_return;
    }

    // DMA-list mode: alternate getList / putList commands.
    const std::uint32_t per_list = std::max<std::uint32_t>(
        1, std::min<std::uint32_t>(spe::maxListElements,
                                   listCommandBytes / elem));
    const std::uint32_t list_bytes = per_list * elem;
    const unsigned slots =
        std::max<std::uint32_t>(1, spec.lsBytes / list_bytes);
    for (unsigned s = 0; s < slots; ++s)
        all_mask |= (1u << (get_tag + s)) | (1u << (put_tag + s));

    std::uint64_t issued = 0;
    std::uint64_t cmd = 0;
    while (issued < spec.bytesPerDir) {
        std::uint32_t this_cmd = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(list_bytes,
                                    spec.bytesPerDir - issued));
        LsAddr slot = static_cast<LsAddr>((cmd % slots) * list_bytes);
        auto tag_off = static_cast<unsigned>(cmd % slots);

        auto make_list = [&](EffAddr base) {
            std::vector<spe::ListElement> list;
            list.reserve(per_list);
            for (std::uint32_t o = 0; o < this_cmd; o += elem)
                list.push_back({base + (issued + o) % window, elem});
            return list;
        };

        co_await mfc.queueSpace();
        mfc.getList(spec.getLsBase + slot, make_list(spec.getBase),
                    get_tag + tag_off);
        if (spec.syncEvery && ++since_sync >= spec.syncEvery) {
            co_await mfc.tagWait(all_mask);
            since_sync = 0;
        }
        co_await mfc.queueSpace();
        mfc.putList(spec.putLsBase + slot, make_list(spec.putBase),
                    put_tag + tag_off);
        if (spec.syncEvery && ++since_sync >= spec.syncEvery) {
            co_await mfc.tagWait(all_mask);
            since_sync = 0;
        }
        issued += this_cmd;
        ++cmd;
    }
    co_await mfc.tagWait(all_mask);
}

namespace
{

/**
 * One software-pipeline stage of the memory copy: GETs a chunk into its
 * LS slot, waits, PUTs it out, waits, then moves to its next chunk.
 */
sim::Task
copySlot(cell::CellSystem &sys, unsigned speIndex, EffAddr src, EffAddr dst,
         std::uint64_t nChunks, std::uint32_t chunkBytes,
         std::uint32_t elemBytes, bool useList, LsAddr lsa, unsigned slot,
         unsigned slots)
{
    auto &mfc = sys.spe(speIndex).mfc();
    const std::uint32_t mask = 1u << slot;
    for (std::uint64_t c = slot; c < nChunks; c += slots) {
        EffAddr off = c * chunkBytes;
        if (useList) {
            std::vector<spe::ListElement> list;
            for (std::uint32_t o = 0; o < chunkBytes; o += elemBytes)
                list.push_back({src + off + o, elemBytes});
            co_await mfc.queueSpace();
            mfc.getList(lsa, std::move(list), slot);
            co_await mfc.tagWait(mask);
            std::vector<spe::ListElement> out;
            for (std::uint32_t o = 0; o < chunkBytes; o += elemBytes)
                out.push_back({dst + off + o, elemBytes});
            co_await mfc.queueSpace();
            mfc.putList(lsa, std::move(out), slot);
            co_await mfc.tagWait(mask);
        } else {
            co_await mfc.queueSpace();
            mfc.get(lsa, src + off, chunkBytes, slot);
            co_await mfc.tagWait(mask);
            co_await mfc.queueSpace();
            mfc.put(lsa, dst + off, chunkBytes, slot);
            co_await mfc.tagWait(mask);
        }
    }
}

} // namespace

sim::Task
dmaCopyStream(cell::CellSystem &sys, unsigned speIndex, EffAddr src,
              EffAddr dst, std::uint64_t totalBytes,
              std::uint32_t elemBytes, bool useList, LsAddr lsBase,
              unsigned slots)
{
    const std::uint32_t chunk =
        useList ? std::min<std::uint64_t>(listCommandBytes, totalBytes)
                : elemBytes;
    if (totalBytes % chunk != 0)
        sim::fatal("dmaCopyStream: totalBytes must be chunk-aligned");
    const std::uint64_t n_chunks = totalBytes / chunk;

    std::vector<sim::Task> stages;
    for (unsigned s = 0; s < slots; ++s) {
        LsAddr lsa = lsBase + s * chunk;
        stages.push_back(copySlot(sys, speIndex, src, dst, n_chunks, chunk,
                                  elemBytes, useList, lsa, s, slots));
        stages.back().start();
    }
    for (auto &st : stages)
        co_await st;
}

namespace
{

/**
 * One RMW chain of the GUPS stream: GET a random element into this
 * slot's LS buffer, wait for the data, PUT the "updated" element back
 * to the same address, wait for the ack, repeat.
 */
sim::Task
updateSlot(cell::CellSystem &sys, const RandomUpdateSpec &spec,
           std::uint64_t nElems, unsigned slot)
{
    auto &mfc = sys.spe(spec.speIndex).mfc();
    const std::uint32_t elem = spec.elemBytes;
    const LsAddr lsa = spec.lsBase +
                       static_cast<LsAddr>(slot * util::roundUp(elem, 16));
    const std::uint32_t mask = 1u << slot;
    sim::Rng rng(slotSeed(spec.seed, slot));
    for (std::uint64_t u = slot; u < spec.updates; u += spec.slots) {
        EffAddr ea =
            spec.tableBase + rng.uniformInt(0, nElems - 1) * elem;
        co_await mfc.queueSpace();
        mfc.get(lsa, ea, elem, slot);
        co_await mfc.tagWait(mask);
        co_await mfc.queueSpace();
        mfc.put(lsa, ea, elem, slot);
        co_await mfc.tagWait(mask);
    }
}

} // namespace

sim::Task
randomUpdateStream(cell::CellSystem &sys, RandomUpdateSpec spec)
{
    const std::uint32_t elem = spec.elemBytes;
    if (elem == 0 || spec.tableBytes == 0 || spec.tableBytes % elem != 0)
        sim::fatal("randomUpdateStream: tableBytes must be a non-zero "
                   "multiple of elemBytes");
    if (spec.slots == 0 || spec.slots > 16)
        sim::fatal("randomUpdateStream: slots must be 1..16");
    const std::uint64_t n_elems = spec.tableBytes / elem;

    std::vector<sim::Task> chains;
    for (unsigned s = 0; s < spec.slots; ++s) {
        chains.push_back(updateSlot(sys, spec, n_elems, s));
        chains.back().start();
    }
    for (auto &c : chains)
        co_await c;
}

sim::Task
randomGatherStream(cell::CellSystem &sys, RandomGatherSpec spec)
{
    auto &mfc = sys.spe(spec.speIndex).mfc();
    const std::uint32_t elem = spec.elemBytes;
    if (elem == 0 || spec.tableBytes == 0 || spec.tableBytes % elem != 0)
        sim::fatal("randomGatherStream: tableBytes must be a non-zero "
                   "multiple of elemBytes");
    if (spec.totalBytes % elem != 0)
        sim::fatal("randomGatherStream: totalBytes must be a multiple "
                   "of elemBytes");
    const std::uint64_t n_table = spec.tableBytes / elem;
    const std::uint64_t n = spec.totalBytes / elem;
    sim::Rng rng(spec.seed);
    auto random_ea = [&] {
        return spec.tableBase + rng.uniformInt(0, n_table - 1) * elem;
    };

    if (!spec.useList) {
        // Element-wise gather: one GET command per element, all on one
        // tag, waiting only at the end (maximum overlap — the queue
        // depth and the issue engine are the limiters).
        const unsigned slots = std::max<std::uint32_t>(
            1, std::min<std::uint32_t>(mfc.queueDepth() + 1,
                                       spec.lsBytes / elem));
        const std::uint32_t mask = 1u << spec.tag;
        for (std::uint64_t i = 0; i < n; ++i) {
            co_await mfc.queueSpace();
            LsAddr lsa = spec.lsBase +
                         static_cast<LsAddr>((i % slots) * elem);
            mfc.get(lsa, random_ea(), elem, spec.tag);
        }
        co_await mfc.tagWait(mask);
        co_return;
    }

    // DMA-list gather: elemsPerList scattered elements per command,
    // software-pipelined over rotating LS slots / tags.  The MFC's LS
    // cursor rounds each element up to 16 B, so a list's LS footprint
    // is per_list * roundUp(elem, 16); lists longer than the LS region
    // can land are clamped, exactly as real LS capacity would force.
    const auto elem_ls =
        static_cast<std::uint32_t>(util::roundUp(elem, 16));
    const std::uint32_t per_list = std::max<std::uint32_t>(
        1, std::min({static_cast<std::uint32_t>(spe::maxListElements),
                     static_cast<std::uint32_t>(spec.elemsPerList),
                     spec.lsBytes / elem_ls}));
    const std::uint32_t list_ls = per_list * elem_ls;
    const unsigned slots = std::max<std::uint32_t>(
        1, std::min<std::uint32_t>(spec.slots, spec.lsBytes / list_ls));
    const std::uint32_t mask = maskOf(spec.tag, slots);

    std::uint64_t issued = 0;
    std::uint64_t cmd = 0;
    while (issued < n) {
        auto this_cmd = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(per_list, n - issued));
        std::vector<spe::ListElement> list;
        list.reserve(this_cmd);
        for (std::uint32_t e = 0; e < this_cmd; ++e)
            list.push_back({random_ea(), elem});
        co_await mfc.queueSpace();
        LsAddr lsa = spec.lsBase +
                     static_cast<LsAddr>((cmd % slots) * list_ls);
        unsigned tag = spec.tag + static_cast<unsigned>(cmd % slots);
        mfc.getList(lsa, std::move(list), tag);
        issued += this_cmd;
        ++cmd;
    }
    co_await mfc.tagWait(mask);
}

} // namespace cellbw::core
