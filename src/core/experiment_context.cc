#include "core/experiment_context.hh"

#include <algorithm>
#include <cstdio>

#include "core/result_cache.hh"
#include "sim/logging.hh"
#include "util/file.hh"
#include "util/strings.hh"

namespace cellbw::core
{

ExperimentContext::ExperimentContext(std::string prog,
                                     std::string description,
                                     Backend backend)
    : opts(std::move(prog), std::move(description)), backend(backend)
{
    cell::CellConfig::registerOptions(opts);
    // The repeat spec owns its options; native defaults to one warmup
    // repetition (first-touch host caches), sim to none so existing
    // reports stay byte-identical.
    RepeatSpec::registerOptions(opts,
                                backend == Backend::Native ? 1 : 0);
    opts.addString("backend", toString(backend),
                   "execution backend (sim, native); part of the "
                   "canonical config, must match the experiment's "
                   "registration");
    opts.addUint("jobs", 0,
                 "worker threads for the seed sweep (0 = one per "
                 "hardware thread; results are identical for any "
                 "value)");
    opts.addBool("csv", false, "also emit CSV after the table");
    opts.addString("json", "",
                   "write a machine-readable JSON report (config, "
                   "per-point results, metrics) to this file");
    opts.addBool("quick", false, "fewer runs and bytes (CI mode)");
    opts.addBytes("bytes-per-spe", 4 * util::MiB,
                  "bytes each SPE/thread/stream moves (weak scaling; "
                  "the paper uses 32 MiB)");
    // These steer output/host scheduling only; results (and therefore
    // the cache key and the v2 report config) never depend on them.
    opts.setResultNeutral("jobs");
    opts.setResultNeutral("csv");
    opts.setResultNeutral("json");
    // --sim-jobs picks how many threads execute the partitioned
    // schedule; the schedule itself (and the report) is the same for
    // any value.  --sim-profile is NOT neutral: it adds profile.*
    // counters to the report's metrics section.
    opts.setResultNeutral("sim-jobs");
}

bool
ExperimentContext::parse(int argc, const char *const *argv)
{
    if (!opts.parse(argc, argv))
        return false;
    // Cross-flag config validation (e.g. fault rates summing past
    // 1) throws FatalError; report it like any other bad flag
    // instead of letting it terminate the process.
    try {
        cfg = cell::CellConfig::fromOptions(opts);
    } catch (const sim::FatalError &e) {
        std::fprintf(stderr, "%s: %s\n", opts.prog().c_str(),
                     e.what());
        return false;
    }
    // --backend is canonical config: an unknown value is an error with
    // a named diagnostic, and a known value must match the backend the
    // experiment was registered for (bodies are written against one).
    Backend requested;
    if (!parseBackend(opts.getString("backend"), requested)) {
        std::fprintf(stderr,
                     "%s: unknown backend '%s' (known backends: %s)\n",
                     opts.prog().c_str(),
                     opts.getString("backend").c_str(),
                     knownBackends());
        return false;
    }
    if (requested != backend) {
        std::fprintf(stderr,
                     "%s: this experiment runs on the %s backend, not "
                     "'%s'\n",
                     opts.prog().c_str(), toString(backend),
                     toString(requested));
        return false;
    }
    std::string repeatErr;
    if (!repeat.fromOptions(opts, repeatErr)) {
        std::fprintf(stderr, "%s: %s\n", opts.prog().c_str(),
                     repeatErr.c_str());
        return false;
    }
    par.jobs = static_cast<unsigned>(opts.getUint("jobs"));
    bytesPerSpe = opts.getBytes("bytes-per-spe");
    csv = opts.getBool("csv");
    jsonPath = opts.getString("json");
    if (!jsonPath.empty())
        repeat.metrics = &json.metrics();
    if (opts.getBool("quick")) {
        repeat.runs = std::min(repeat.runs, 3u);
        bytesPerSpe = std::min<std::uint64_t>(bytesPerSpe,
                                              util::MiB);
    }
    // The canonical config is now final: compute the cache identity
    // and stamp it into the report (run and suite mode agree on it).
    cacheMaterial_ = ResultCache::materialFor(opts.prog(), opts);
    cacheKey_ = ResultCache::hashKey(cacheMaterial_);
    json.setExperiment(opts.prog());
    json.setBackend(toString(backend), backendIsCacheable(backend));
    json.setCacheInfo(ResultCache::salt(), cacheKey_);
    return true;
}

void
ExperimentContext::header(const char *figure, const char *what)
{
    json.setBench(opts.prog(), figure, what);
    printf("== %s: %s ==\n", figure, what);
    if (backend == Backend::Native) {
        printf("   machine: native host backend, %u runs/point "
               "(+%u warmup), %s per buffer\n\n",
               repeat.runs, repeat.warmup,
               util::bytesToString(bytesPerSpe).c_str());
        return;
    }
    printf("   machine: %.1f GHz Cell blade, %u EIB rings, "
           "ramp peak %.1f GB/s, %u runs/point, %s per "
           "SPE/stream\n\n",
           cfg.clock.cpuHz / 1e9, cfg.eib.numRings,
           cfg.rampPeakGBps(), repeat.runs,
           util::bytesToString(bytesPerSpe).c_str());
}

void
ExperimentContext::emit(const stats::Table &table, const std::string &name)
{
    print(table.render());
    if (csv)
        printf("\n-- CSV --\n%s", table.renderCsv().c_str());
    printf("\n");
    if (!jsonPath.empty())
        json.addTable(name, table);
}

void
ExperimentContext::print(const std::string &s)
{
    if (!quiet_)
        std::fputs(s.c_str(), stdout);
}

void
ExperimentContext::printf(const char *fmt, ...)
{
    if (quiet_)
        return;
    va_list args;
    va_start(args, fmt);
    std::vprintf(fmt, args);
    va_end(args);
}

void
ExperimentContext::setSuite(const std::string &suiteId)
{
    json.setSuite(suiteId);
}

int
ExperimentContext::finish()
{
    if (jsonPath.empty() && !cache_)
        return 0;
    json.setConfig(opts);
    std::string doc = json.render();
    doc += '\n';
    // Native measurements are never cached: replaying a stored number
    // as a fresh measurement would be wrong (the cache contract is
    // bit-identical deterministic replay).
    if (cache_ && backendIsCacheable(backend))
        cache_->store(cacheKey_, cacheMaterial_, doc);
    if (jsonPath.empty())
        return 0;
    if (!util::writeFileAtomic(jsonPath, doc)) {
        std::fprintf(stderr, "%s: cannot write %s\n",
                     opts.prog().c_str(), jsonPath.c_str());
        return 1;
    }
    printf("json report written to %s\n", jsonPath.c_str());
    return 0;
}

} // namespace cellbw::core
