/**
 * @file
 * The analytic bandwidth oracle: every theoretical peak the paper
 * quotes, computed from the active machine configuration.
 *
 * The paper's expectations ("1 SPE sustains ~60% of the 16.8 GB/s
 * ramp", "a pair reaches the 33.6 GB/s duplex peak", "the EIB
 * saturates below the 8x16.8 cycle peak") are all stated relative to
 * architectural peaks that follow from port widths and clocks:
 *
 *   ramp  = 16 B / bus cycle            -> 16.8 GB/s at 2.1 GHz
 *   LS    = 16 B / CPU cycle            -> 33.6 GB/s
 *   L1/L2 = 16 B / CPU cycle load port  -> 33.6 GB/s
 *   pair  = GET+PUT duplex, 2 ramps     -> 33.6 GB/s
 *   EIB   = rings x 16 B x bus x 2 concurrent transfers per ring
 *                                       -> 134.4 GB/s
 *   mem   = sum of sustained bank rates -> 31.0 GB/s
 *
 * At the nominal 3.2 GHz Cell these same formulas give the widely
 * quoted 204.8 GB/s EIB and 25.6 GB/s XDR figures; the paper's blade
 * runs at 2.1 GHz, scaling everything by 2.1/3.2.  Baselines under
 * `baselines/paper/` reference peaks *by name* instead of hardcoding
 * GB/s, so expectations track the configuration: halve the clock (or
 * run `--cpu-ghz 3.2`) and every oracle-relative check scales with it.
 */

#ifndef CELLBW_CORE_ORACLE_HH
#define CELLBW_CORE_ORACLE_HH

#include <string>
#include <utility>
#include <vector>

#include "cell/config.hh"

namespace cellbw::util
{
class JsonValue;
} // namespace cellbw::util

namespace cellbw::core
{

class Oracle
{
  public:
    explicit Oracle(const cell::CellConfig &cfg);

    /** @name The named peaks (GB/s). */
    /** @{ */
    /** One EIB ramp direction (the MIC/XDR interface rides one). */
    double rampPeak() const { return ramp_; }
    /** SPU <-> Local Store port. */
    double lsPeak() const { return ls_; }
    /** PPU load/store port width (one 128-bit access per 2 cycles). */
    double l1Peak() const { return l1_; }
    /** L2 moves through the same port; the width bound is shared. */
    double l2Peak() const { return l1_; }
    /** One SPE pair's concurrent GET+PUT (both ramp directions). */
    double pairPeak() const { return pair_; }
    /** Whole-EIB data peak (two disjoint transfers per ring). */
    double eibPeak() const { return eib_; }
    /** Sustained memory-system rate (all banks). */
    double memSustained() const { return mem_; }
    /** Local bank through the MIC plus the remote bank over the IOIF. */
    double micIoifPeak() const { return micIoif_; }
    /** IOIF link, per direction. */
    double ioPeak() const { return io_; }
    /** Inter-blade cluster link, per direction. */
    double bladeLinkPeak() const { return bladeLink_; }
    /**
     * Cluster bisection bandwidth: the sum of per-direction link rates
     * crossing the chips/2 cut (on-blade IOIFs count io, inter-blade
     * links count blade-link).  At two chips this is just the IOIF —
     * the conclusion's 7 GB/s cross-chip ceiling.
     */
    double bisectionPeak() const { return bisection_; }
    /** n-SPE couples / cycle topology peak: n ramps active. */
    double topologyPeak(unsigned spes) const { return spes * ramp_; }
    /**
     * Issue-engine bound of one SPE gathering scattered @p elemBytes
     * elements with element-wise GETs: the MFC spends
     * `dma-elem-overhead` bus cycles per command, so at most
     * elemBytes per that many bus cycles flow regardless of the
     * memory system (capped at the ramp).
     */
    double gatherElemPeak(std::uint32_t elemBytes) const;
    /**
     * Same bound for DMA-list gather: `dma-list-elem-overhead` bus
     * cycles per element, the Chen & Bader reason small-element
     * gather must use lists.
     */
    double gatherListPeak(std::uint32_t elemBytes) const;
    /** @} */

    /**
     * Look up a peak by baseline-file name: "ramp", "xdr" (alias of
     * ramp), "ls", "l1", "l2", "pair", "eib", "mem", "bank0", "bank1",
     * "io", "mic+ioif", "blade-link", "bisection", "couples:<n>",
     * "cycle:<n>", "gather-elem:<bytes>", "gather-list:<bytes>".
     * @return false when @p name is not a known peak.
     */
    bool peak(const std::string &name, double &out) const;

    /** (name, GB/s) of every fixed-name peak, for reports and tests. */
    std::vector<std::pair<std::string, double>> table() const;

    /**
     * Rebuild the machine configuration from a cellbw-bench-v2
     * report's `config` object (only the options CellConfig registers
     * are consumed) and derive its oracle.  This is what `cellbw
     * validate` uses, so forwarded machine flags (--cpu-ghz, --rings,
     * ...) re-scale every oracle-relative expectation automatically.
     * @return false with a message in @p err on a malformed config.
     */
    static bool fromReportConfig(const util::JsonValue &config,
                                 Oracle &out, std::string &err);

  private:
    double ramp_ = 0, ls_ = 0, l1_ = 0, pair_ = 0, eib_ = 0;
    double mem_ = 0, bank0_ = 0, bank1_ = 0, io_ = 0, micIoif_ = 0;
    double bladeLink_ = 0, bisection_ = 0;
    double busHz_ = 0;
    unsigned elemOverheadBus_ = 0, listElemOverheadBus_ = 0;
};

} // namespace cellbw::core

#endif // CELLBW_CORE_ORACLE_HH
