#include "core/worker_pool.hh"

namespace cellbw::core
{

WorkerPool::WorkerPool(unsigned workers)
{
    if (workers == 0)
        workers = std::thread::hardware_concurrency();
    if (workers == 0)
        workers = 1;
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
WorkerPool::submit(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(fn));
    }
    cv_.notify_one();
}

void
WorkerPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return;     // stop_ set and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

} // namespace cellbw::core
