#include "core/worker_pool.hh"

#include "sim/logging.hh"

namespace cellbw::core
{

WorkerPool::WorkerPool(unsigned workers)
{
    if (workers == 0)
        workers = std::thread::hardware_concurrency();
    if (workers == 0)
        workers = 1;
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    shutdown();
}

void
WorkerPool::submit(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_) {
            // A task accepted here could be silently dropped (workers
            // may already have observed the empty queue and exited) or
            // run on a pool mid-join.  Refuse loudly instead.
            sim::fatal("WorkerPool::submit after shutdown began; the "
                       "caller must stop admitting work before "
                       "draining the pool");
        }
        queue_.push_back(std::move(fn));
    }
    cv_.notify_one();
}

void
WorkerPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    std::lock_guard<std::mutex> join(joinMutex_);
    if (joined_)
        return;
    for (auto &t : threads_)
        t.join();
    joined_ = true;
}

bool
WorkerPool::stopping() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stop_;
}

void
WorkerPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return;     // stop_ set and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

} // namespace cellbw::core
