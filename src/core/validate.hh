/**
 * @file
 * Paper-fidelity validation: the `cellbw validate` gate.
 *
 * `cellbw suite`/`compare` can tell when results *drift*; this layer
 * asserts that they actually *reproduce the paper*.  Expectations live
 * as machine-readable `cellbw-paper-v1` documents under
 * `baselines/paper/`: one file per figure/table of Jiménez-González
 * et al., plus `rules.json` with the paper's cross-experiment
 * programming rules.  Each file is a list of named checks over the
 * points of a cellbw-bench-v2 report:
 *
 *   band       every selected value inside an absolute [min,max] GB/s
 *              band and/or inside [rel_min,rel_max] x a named analytic
 *              peak from core::Oracle ("pair", "ramp", "eib", ...)
 *   monotonic  selected values ordered by a column rise (or fall),
 *              with a relative slack for simulation noise
 *   ordering   aggregate of selection A >= (or <=) factor x aggregate
 *              of selection B — crossovers, saturation, who-wins
 *   plateau    selected values within spread_pct of each other
 *   spread     per-row gap between two columns (placement min/max) at
 *              least min_gap GB/s
 *
 * A selection is a {column: matcher} object; matchers are exact
 * strings, exact numbers, arrays of either, or {"min":..,"max":..}
 * ranges evaluated numerically (byte-size labels like "1KiB" compare
 * as bytes, the sync-sweep's "all" as +infinity).  `ordering` checks
 * may reach across experiments — that is how the paper's four
 * programming rules (>=8 B accesses, delayed sync, DMA lists below
 * 1 KiB, 2x4 SPEs over 1x8) are encoded as executable assertions.
 *
 * runValidate() drives the selected experiments through the shared
 * suite/cache path, evaluates every check against the fresh reports,
 * and reports pass/fail per rule with the offending points named.
 * Oracle-relative expectations are derived from each report's own
 * config section, so forwarded machine flags re-scale them instead of
 * breaking them.
 */

#ifndef CELLBW_CORE_VALIDATE_HH
#define CELLBW_CORE_VALIDATE_HH

#include <string>
#include <vector>

namespace cellbw::core
{

struct ValidateSpec
{
    /** Experiments to validate; empty = every baselined experiment. */
    std::vector<std::string> targets;

    /** Directory of cellbw-paper-v1 expectation files. */
    std::string baselineDir = "baselines/paper";

    /** Where experiment reports and validate.json land. */
    std::string outDir = "cellbw-validate-out";

    /** Result-cache root (shared with `cellbw suite`). */
    std::string cacheDir = ".cellbw-cache";

    /** false disables the result cache (--no-cache). */
    bool useCache = true;

    /** Shared pool width; 0 = one per hardware thread. */
    unsigned jobs = 0;

    /** Flags forwarded to every experiment (--quick, machine knobs). */
    std::vector<std::string> forward;

    /** Suppress per-experiment progress lines. */
    bool terse = false;

    /** Extra JSON copy of the validation report (--json FILE). */
    std::string jsonPath;
};

/** One evaluated check. */
struct CheckOutcome
{
    enum class Status { Pass, Fail, Skip };

    std::string rule;        ///< the check's name, e.g. "paper.rule3-..."
    std::string experiment;  ///< primary experiment ("-" for cross rules)
    Status status = Status::Skip;
    std::string detail;      ///< failure diagnostics / skip reason
};

struct ValidateOutcome
{
    std::vector<CheckOutcome> checks;
    unsigned passed = 0;
    unsigned failed = 0;
    unsigned skipped = 0;

    bool ok() const { return failed == 0; }
};

/**
 * Run the validation campaign.  Progress and the report go to stdout,
 * errors to stderr.
 * @return process exit code: 0 all checks pass, 1 any check failed,
 *         2 setup failure (missing baseline, unknown experiment,
 *         malformed expectation file, experiment failure).
 */
int runValidate(const ValidateSpec &spec,
                ValidateOutcome *outcome = nullptr);

} // namespace cellbw::core

#endif // CELLBW_CORE_VALIDATE_HH
