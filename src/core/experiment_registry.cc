#include "core/experiment_registry.hh"

#include <cstdio>

#include "sim/logging.hh"
#include "util/strings.hh"

namespace cellbw::core
{

ExperimentRegistry &
ExperimentRegistry::instance()
{
    static ExperimentRegistry registry;
    return registry;
}

void
ExperimentRegistry::add(Experiment e)
{
    if (experiments_.count(e.name)) {
        sim::fatal("duplicate experiment registration: %s",
                   e.name.c_str());
    }
    std::string name = e.name;
    experiments_.emplace(std::move(name), std::move(e));
}

const Experiment *
ExperimentRegistry::find(const std::string &name) const
{
    auto it = experiments_.find(name);
    return it == experiments_.end() ? nullptr : &it->second;
}

std::vector<const Experiment *>
ExperimentRegistry::sorted() const
{
    std::vector<const Experiment *> out;
    out.reserve(experiments_.size());
    for (const auto &kv : experiments_)
        out.push_back(&kv.second);    // std::map: already name-sorted
    return out;
}

std::string
ExperimentRegistry::listText(std::optional<Backend> filter) const
{
    std::vector<const Experiment *> shown;
    for (const Experiment *e : sorted()) {
        if (!filter || e->backend == *filter)
            shown.push_back(e);
    }
    std::string out = util::format("%zu experiments:\n", shown.size());
    for (const Experiment *e : shown) {
        out += util::format("  %-20s %-12s %-8s %s\n", e->name.c_str(),
                            e->figure.c_str(), toString(e->backend),
                            e->description.c_str());
    }
    return out;
}

int
runExperimentCli(const std::string &name, int argc,
                 const char *const *argv)
{
    const Experiment *e = ExperimentRegistry::instance().find(name);
    if (!e) {
        std::fprintf(stderr,
                     "cellbw: unknown experiment '%s' (see `cellbw "
                     "list`)\n",
                     name.c_str());
        return 1;
    }
    ExperimentContext ctx(e->name, e->description, e->backend);
    if (!ctx.parse(argc, argv))
        return 1;
    return e->body(ctx);
}

} // namespace cellbw::core
