#include "core/halo.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"
#include "util/align.hh"

namespace cellbw::core
{

namespace
{

/**
 * One rank of the stencil: per step, post the two neighbour-halo GETs,
 * run the double-buffered interior update sweep underneath them, then
 * land the halos, compute the boundary, and PUT it back.
 */
sim::Task
haloRank(cell::CellSystem &sys, unsigned spe, unsigned rank,
         unsigned ranks, unsigned steps,
         const std::vector<EffAddr> &slab, const HaloConfig &cfg)
{
    auto &s = sys.spe(spe);
    auto &mfc = s.mfc();
    const std::uint32_t chunk = cfg.chunkBytes;
    const std::uint32_t halo = cfg.haloBytes;
    const std::uint64_t interior = cfg.slabBytes - 2ull * halo;
    const std::uint64_t n = util::divCeil(interior, chunk);

    // Separate input and output LS buffers per slot: a PUT's source
    // must survive until its tag is waited out, so the update may not
    // land in the buffer the next GET is prefetching into.
    const LsAddr in[2] = {s.lsAlloc(chunk), s.lsAlloc(chunk)};
    const LsAddr out[2] = {s.lsAlloc(chunk), s.lsAlloc(chunk)};
    const LsAddr halo_ls = s.lsAlloc(2 * halo);

    const unsigned left = (rank + ranks - 1) % ranks;
    const unsigned right = (rank + 1) % ranks;
    const EffAddr own = slab[rank];
    constexpr unsigned put_tag = 3;     // boundary write-back
    constexpr unsigned halo_tag = 4;    // both neighbour GETs
    const std::uint32_t step_mask = (1u << 0) | (1u << 1) | (1u << put_tag);

    auto chunk_size = [&](std::uint64_t c) {
        return static_cast<std::uint32_t>(
            std::min<std::uint64_t>(chunk, interior - c * chunk));
    };

    for (unsigned step = 0; step < steps; ++step) {
        // 1. Post the halo GETs first so the exchange — possibly a
        //    multi-hop link crossing — overlaps the interior sweep.
        for (std::uint32_t off = 0; off < halo; off += chunk) {
            const std::uint32_t sz = std::min(chunk, halo - off);
            co_await mfc.queueSpace();
            mfc.get(halo_ls + off,
                    slab[left] + cfg.slabBytes - halo + off, sz, halo_tag);
            co_await mfc.queueSpace();
            mfc.get(halo_ls + halo + off, slab[right] + off, sz, halo_tag);
        }

        // 2. Interior update sweep: GET chunk c+1 before waiting on
        //    chunk c, so the transfer overlaps this chunk's compute.
        co_await mfc.queueSpace();
        mfc.get(in[0], own + halo, chunk_size(0), 0);
        for (std::uint64_t c = 0; c < n; ++c) {
            const unsigned cur = static_cast<unsigned>(c % 2);
            const unsigned nxt = 1 - cur;
            if (c + 1 < n) {
                co_await mfc.queueSpace();
                mfc.get(in[nxt], own + halo + (c + 1) * chunk,
                        chunk_size(c + 1), nxt);
            }
            // Land this chunk's GET and close the PUT that last used
            // out[cur], freeing it for this chunk's update.
            co_await mfc.tagWait(1u << cur);
            const std::uint32_t sz = chunk_size(c);
            co_await s.spu().cycles(cfg.computeCyclesPerKiB *
                                    util::divCeil(sz, util::KiB));
            co_await mfc.queueSpace();
            mfc.put(out[cur], own + halo + c * chunk, sz, cur);
        }

        // 3. Boundary: land the halos, update both boundary strips,
        //    write them back.
        co_await mfc.tagWait(1u << halo_tag);
        co_await s.spu().cycles(cfg.computeCyclesPerKiB *
                                util::divCeil(2ull * halo, util::KiB));
        for (std::uint32_t off = 0; off < halo; off += chunk) {
            const std::uint32_t sz = std::min(chunk, halo - off);
            co_await mfc.queueSpace();
            mfc.put(halo_ls + off, own + off, sz, put_tag);
            co_await mfc.queueSpace();
            mfc.put(halo_ls + halo + off,
                    own + cfg.slabBytes - halo + off, sz, put_tag);
        }
        co_await mfc.tagWait(step_mask);
    }
}

} // namespace

HaloResult
runClusterHalo(cell::CellSystem &sys, const HaloConfig &cfg)
{
    const unsigned chips = sys.numChips();
    if (cfg.ranksPerChip < 1 || cfg.ranksPerChip > 8)
        sim::fatal("cluster halo: ranksPerChip must be 1..8, got %u",
                   cfg.ranksPerChip);
    if (sys.numSpes() != 8 * chips ||
        sys.config().affinity != cell::AffinityPolicy::Linear) {
        sim::fatal("cluster halo: needs every SPE slot active under "
                   "linear affinity (--spes=%u --affinity=linear) so a "
                   "rank's chip is an exact placement choice", 8 * chips);
    }
    if (cfg.haloBytes == 0 || cfg.haloBytes % 16 != 0)
        sim::fatal("cluster halo: halo bytes must be a non-zero "
                   "multiple of 16");
    if (cfg.slabBytes <= 2ull * cfg.haloBytes)
        sim::fatal("cluster halo: slab must exceed two halos");
    if (!util::isValidDmaSize(cfg.chunkBytes))
        sim::fatal("cluster halo: chunk size %u is not a valid DMA size",
                   cfg.chunkBytes);

    const unsigned ranks = chips * cfg.ranksPerChip;
    const unsigned steps =
        cfg.steps ? cfg.steps
                  : std::max<unsigned>(
                        1, static_cast<unsigned>(cfg.bytesPerSpe /
                                                 cfg.slabBytes));

    // Each rank's slab lives in its home chip's XDR bank; the slab
    // table is shared read-only by every rank coroutine.
    std::vector<EffAddr> slab(ranks);
    for (unsigned r = 0; r < ranks; ++r)
        slab[r] = sys.malloc(cfg.slabBytes,
                             mem::NumaPolicy::onBank(r / cfg.ranksPerChip));

    const Tick t0 = sys.now();
    for (unsigned r = 0; r < ranks; ++r) {
        unsigned spe;
        if (cfg.placement == cell::TaskPlacement::Locality) {
            spe = (r / cfg.ranksPerChip) * 8 + r % cfg.ranksPerChip;
        } else {
            // Scatter ranks over the chips in rank order, the way a
            // placement-blind dispatcher would.
            spe = (r % chips) * 8 + r / chips;
        }
        sys.launch(haloRank(sys, spe, r, ranks, steps, slab, cfg));
    }
    sys.run();
    const Tick elapsed = sys.now() - t0;

    HaloResult res;
    res.ranks = ranks;
    res.steps = steps;
    const std::uint64_t rank_steps =
        static_cast<std::uint64_t>(ranks) * steps;
    res.haloBytes = rank_steps * 2ull * cfg.haloBytes;
    // Interior GET + PUT plus the boundary write-back.
    res.bulkBytes = rank_steps * (2ull * (cfg.slabBytes -
                                          2ull * cfg.haloBytes) +
                                  2ull * cfg.haloBytes);
    res.seconds = sys.clock().seconds(elapsed);
    res.gbps = sys.clock().bandwidthGBps(res.haloBytes + res.bulkBytes,
                                         elapsed);
    res.haloGbps = sys.clock().bandwidthGBps(res.haloBytes, elapsed);
    return res;
}

} // namespace cellbw::core
