/**
 * @file
 * Campaign driver: run a manifest of experiments as one suite.
 *
 * A suite is the paper's actual unit of work — every figure is
 * kernels x configs x placement-randomized repetitions — and
 * `cellbw suite` runs one end to end:
 *
 *  - The manifest selects experiments: the built-in `ci` (every
 *    registered experiment, default flags) or a file of
 *    `<experiment> [flags...]` lines (# comments).  Suite-level
 *    forwarded flags (--quick, --runs, machine knobs, ...) append to
 *    every line.
 *
 *  - All selected experiments share ONE WorkerPool (--jobs workers).
 *    Each experiment's coordinator thread feeds its seed-sweep runs
 *    into the pool as its points come up, so the pool batches across
 *    experiments instead of serializing 18 private pools at process
 *    boundaries.
 *
 *  - Results are content-addressed through core::ResultCache: a hit
 *    skips simulation and replays the stored report bytes into the
 *    output directory bit-identically; a miss runs and populates.  A
 *    warm rerun of an unchanged suite therefore does no simulation at
 *    all and produces an identical output tree.
 *
 * Each experiment writes `<out>/<name>.json` (schema cellbw-bench-v2,
 * tagged with the suite id) and the suite writes a deterministic
 * `<out>/suite.json` index — no timestamps or hit/miss flags, so
 * output trees from cold and warm runs diff clean.
 */

#ifndef CELLBW_CORE_SUITE_HH
#define CELLBW_CORE_SUITE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cellbw::core
{

struct SuiteSpec
{
    /** Built-in manifest name (`ci`) or a manifest file path. */
    std::string manifest = "ci";

    /** Report output directory; created if needed. */
    std::string outDir = "cellbw-suite-out";

    /** Result-cache root. */
    std::string cacheDir = ".cellbw-cache";

    /** false disables lookup AND population (--no-cache). */
    bool useCache = true;

    /** When non-zero, LRU-prune the cache to this many bytes after the
     *  suite finishes (--cache-max-bytes). */
    std::uint64_t cacheMaxBytes = 0;

    /** Shared pool width; 0 = one per hardware thread. */
    unsigned jobs = 0;

    /** Flags appended to every experiment's command line. */
    std::vector<std::string> forward;

    /** Suppress per-experiment progress lines (summary only). */
    bool terse = false;
};

struct SuiteOutcome
{
    unsigned selected = 0;
    unsigned cacheHits = 0;
    unsigned ran = 0;
    unsigned failures = 0;

    bool ok() const { return failures == 0; }
};

/**
 * Run the suite.  Progress goes to stdout, errors to stderr.
 * @return the process exit code (0 iff every experiment succeeded and
 * the manifest resolved).
 */
int runSuite(const SuiteSpec &spec, SuiteOutcome *outcome = nullptr);

} // namespace cellbw::core

#endif // CELLBW_CORE_SUITE_HH
