#include "core/result_cache.hh"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <vector>

#include "core/json_report.hh"
#include "util/file.hh"
#include "util/json.hh"
#include "util/strings.hh"

namespace cellbw::core
{

namespace
{

/**
 * Canonical, locale-independent rendering of a Double option value.
 * std::strtod/printf follow LC_NUMERIC — under a comma-decimal locale
 * "2.1" parses as 2 and 2.1 renders as "2,1", so the same config
 * hashed to a different key depending on the host locale.
 * std::from_chars/std::to_chars always use the C grammar.
 */
std::string
canonicalDouble(const std::string &text)
{
    double v = 0.0;
    const char *first = text.data();
    const char *last = first + text.size();
    // Skip leading whitespace the way the option parser tolerates it;
    // from_chars does not.
    while (first != last && (*first == ' ' || *first == '\t'))
        ++first;
    std::from_chars(first, last, v);
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), v,
                             std::chars_format::general, 17);
    return std::string(buf, res.ptr);
}

} // namespace

std::string
ResultCache::materialFor(const std::string &experiment,
                         const util::Options &opts)
{
    using util::Options;
    std::string m;
    m += "salt ";
    m += kSalt;
    m += "\nschema ";
    m += JsonReport::kSchema;
    m += "\nexperiment ";
    m += experiment;
    m += '\n';
    for (const auto &o : opts.list()) {
        if (o.resultNeutral)
            continue;
        std::string canon;
        switch (o.type) {
          case Options::OptionInfo::Type::Uint:
            canon = std::to_string(util::parseUint64(o.text));
            break;
          case Options::OptionInfo::Type::Double:
            canon = canonicalDouble(o.text);
            break;
          case Options::OptionInfo::Type::Bool: {
            std::string v = util::toLower(o.text);
            canon = (v == "true" || v == "1" || v == "yes") ? "true"
                                                            : "false";
            break;
          }
          case Options::OptionInfo::Type::Bytes:
            canon = std::to_string(util::parseByteSize(o.text));
            break;
          case Options::OptionInfo::Type::String:
            canon = o.text;
            break;
        }
        m += "opt ";
        m += o.name;
        m += '=';
        m += canon;
        m += '\n';
    }
    return m;
}

std::string
ResultCache::hashKey(const std::string &material)
{
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : material) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return util::format("%016llx", static_cast<unsigned long long>(h));
}

ResultCache::ResultCache(std::string root) : root_(std::move(root)) {}

std::string
ResultCache::dirFor(const std::string &key) const
{
    return root_ + "/" + key.substr(0, 2);
}

std::string
ResultCache::lockPath() const
{
    return root_ + "/.lock";
}

bool
ResultCache::lockRoot(util::FileLock &lock) const
{
    std::error_code ec;
    std::filesystem::create_directories(root_, ec);
    if (ec)
        return false;
    return lock.lock(lockPath());
}

bool
ResultCache::validReport(const std::string &report)
{
    util::JsonValue doc;
    std::string err;
    if (!util::JsonValue::parse(report, doc, err))
        return false;
    const util::JsonValue *schema = doc.find("schema");
    return schema && schema->isString() &&
           schema->str() == JsonReport::kSchema;
}

std::optional<std::string>
ResultCache::load(const std::string &key,
                  const std::string &material) const
{
    const std::string base = dirFor(key) + "/" + key;
    std::string storedMaterial;
    if (!util::readFile(base + ".key", storedMaterial))
        return std::nullopt;
    if (storedMaterial != material)
        return std::nullopt;
    std::string report;
    bool haveBytes = util::readFile(base + ".json", report);
    // A torn write or on-disk corruption can leave a valid .key next
    // to missing or damaged report bytes; replaying those would poison
    // the output tree.  Sanity-parse the stored document and treat
    // anything that is not a report of our schema as a miss — and
    // repair the entry so every later reader agrees it is a miss.
    if (!haveBytes || !validReport(report)) {
        recoverTornEntry(base, material);
        return std::nullopt;
    }
    // Refresh the entry's recency so prune() evicts in true LRU order.
    std::error_code ec;
    std::filesystem::last_write_time(
        base + ".json", std::filesystem::file_time_type::clock::now(),
        ec);
    return report;
}

void
ResultCache::recoverTornEntry(const std::string &base,
                              const std::string &material) const
{
    // Serialize with writers: a store() may be completing this entry
    // right now, in which case it is not torn and must be left alone.
    util::FileLock lock;
    lockRoot(lock);         // best effort; removal is safe regardless
    std::string storedMaterial;
    if (!util::readFile(base + ".key", storedMaterial) ||
        storedMaterial != material)
        return;             // already repaired or replaced
    std::string report;
    if (util::readFile(base + ".json", report) && validReport(report))
        return;             // a writer completed it; entry is whole
    // Key first: a half-removed entry must look like a miss, never
    // like a valid entry with missing bytes.
    std::error_code ec;
    std::filesystem::remove(base + ".key", ec);
    std::filesystem::remove(base + ".json", ec);
}

bool
ResultCache::store(const std::string &key, const std::string &material,
                   const std::string &reportBytes) const
{
    std::error_code ec;
    std::filesystem::create_directories(dirFor(key), ec);
    if (ec)
        return false;
    // Exclude concurrent store()/prune()/recovery in this and other
    // processes.  The lock is advisory and best effort — if it cannot
    // be taken the atomic rename protocol below still guarantees
    // whole-file visibility, just not store-vs-prune ordering.
    util::FileLock lock;
    lockRoot(lock);
    const std::string base = dirFor(key) + "/" + key;
    // Report first, material last: an entry is visible to load() only
    // once its .key file exists, and by then the .json is complete.
    if (!util::writeFileAtomic(base + ".json", reportBytes))
        return false;
    return util::writeFileAtomic(base + ".key", material);
}

ResultCache::PruneStats
ResultCache::prune(std::uint64_t maxBytes) const
{
    namespace fs = std::filesystem;
    struct Entry
    {
        fs::path json;
        fs::path key;
        std::uint64_t bytes;
        fs::file_time_type used;
    };
    PruneStats stats;
    std::error_code ec;
    if (!fs::exists(root_, ec) || ec)
        return stats;
    // Hold the writer lock across scan + eviction so a parallel
    // store() can never interleave with the key/json removal pair.
    util::FileLock lock;
    lockRoot(lock);
    std::vector<Entry> entries;
    for (fs::recursive_directory_iterator it(root_, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file(ec) || it->path().extension() != ".json")
            continue;
        fs::path key = it->path();
        key.replace_extension(".key");
        if (!fs::exists(key, ec))
            continue;       // not a cache entry; leave it alone
        // Stat each file individually and skip the entry when any stat
        // fails: file_size() reports uintmax_t(-1) on error, and
        // summing that unchecked once inflated stats.bytes enough to
        // evict the whole cache.  Entries racing a concurrent writer
        // or pruner simply drop out of this scan.
        std::error_code sEc;
        const auto jsonBytes = fs::file_size(it->path(), sEc);
        if (sEc)
            continue;
        const auto keyBytes = fs::file_size(key, sEc);
        if (sEc)
            continue;
        const auto used = fs::last_write_time(it->path(), sEc);
        if (sEc)
            continue;
        Entry e;
        e.json = it->path();
        e.key = key;
        e.bytes = jsonBytes + keyBytes;
        e.used = used;
        entries.push_back(std::move(e));
    }
    for (const auto &e : entries) {
        ++stats.entries;
        stats.bytes += e.bytes;
    }
    if (stats.bytes <= maxBytes)
        return stats;
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.used != b.used)
                      return a.used < b.used;
                  return a.json < b.json;   // stable across equal mtimes
              });
    std::uint64_t held = stats.bytes;
    for (const auto &e : entries) {
        if (held <= maxBytes)
            break;
        // Key first: a half-removed entry must look like a miss, never
        // like a valid entry with missing bytes.
        fs::remove(e.key, ec);
        fs::remove(e.json, ec);
        held -= e.bytes;
        ++stats.evicted;
        stats.evictedBytes += e.bytes;
    }
    return stats;
}

} // namespace cellbw::core
