#include "core/result_cache.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "core/json_report.hh"
#include "util/file.hh"
#include "util/json.hh"
#include "util/strings.hh"

namespace cellbw::core
{

std::string
ResultCache::materialFor(const std::string &experiment,
                         const util::Options &opts)
{
    using util::Options;
    std::string m;
    m += "salt ";
    m += kSalt;
    m += "\nschema ";
    m += JsonReport::kSchema;
    m += "\nexperiment ";
    m += experiment;
    m += '\n';
    for (const auto &o : opts.list()) {
        if (o.resultNeutral)
            continue;
        std::string canon;
        switch (o.type) {
          case Options::OptionInfo::Type::Uint:
            canon = std::to_string(util::parseUint64(o.text));
            break;
          case Options::OptionInfo::Type::Double:
            canon = util::format("%.17g",
                                 std::strtod(o.text.c_str(), nullptr));
            break;
          case Options::OptionInfo::Type::Bool: {
            std::string v = util::toLower(o.text);
            canon = (v == "true" || v == "1" || v == "yes") ? "true"
                                                            : "false";
            break;
          }
          case Options::OptionInfo::Type::Bytes:
            canon = std::to_string(util::parseByteSize(o.text));
            break;
          case Options::OptionInfo::Type::String:
            canon = o.text;
            break;
        }
        m += "opt ";
        m += o.name;
        m += '=';
        m += canon;
        m += '\n';
    }
    return m;
}

std::string
ResultCache::hashKey(const std::string &material)
{
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : material) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return util::format("%016llx", static_cast<unsigned long long>(h));
}

ResultCache::ResultCache(std::string root) : root_(std::move(root)) {}

std::string
ResultCache::dirFor(const std::string &key) const
{
    return root_ + "/" + key.substr(0, 2);
}

std::optional<std::string>
ResultCache::load(const std::string &key,
                  const std::string &material) const
{
    const std::string base = dirFor(key) + "/" + key;
    std::string storedMaterial;
    if (!util::readFile(base + ".key", storedMaterial))
        return std::nullopt;
    if (storedMaterial != material)
        return std::nullopt;
    std::string report;
    if (!util::readFile(base + ".json", report))
        return std::nullopt;
    // A torn write or on-disk corruption can leave a valid .key next
    // to damaged report bytes; replaying those would poison the output
    // tree.  Sanity-parse the stored document and treat anything that
    // is not a report of our schema as a miss (the caller reruns and
    // overwrites the entry).
    util::JsonValue doc;
    std::string err;
    if (!util::JsonValue::parse(report, doc, err))
        return std::nullopt;
    const util::JsonValue *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->str() != JsonReport::kSchema)
        return std::nullopt;
    // Refresh the entry's recency so prune() evicts in true LRU order.
    std::error_code ec;
    std::filesystem::last_write_time(
        base + ".json", std::filesystem::file_time_type::clock::now(),
        ec);
    return report;
}

bool
ResultCache::store(const std::string &key, const std::string &material,
                   const std::string &reportBytes) const
{
    std::error_code ec;
    std::filesystem::create_directories(dirFor(key), ec);
    if (ec)
        return false;
    const std::string base = dirFor(key) + "/" + key;
    // Report first, material last: an entry is visible to load() only
    // once its .key file exists, and by then the .json is complete.
    if (!util::writeFileAtomic(base + ".json", reportBytes))
        return false;
    return util::writeFileAtomic(base + ".key", material);
}

ResultCache::PruneStats
ResultCache::prune(std::uint64_t maxBytes) const
{
    namespace fs = std::filesystem;
    struct Entry
    {
        fs::path json;
        fs::path key;
        std::uint64_t bytes;
        fs::file_time_type used;
    };
    PruneStats stats;
    std::vector<Entry> entries;
    std::error_code ec;
    for (fs::recursive_directory_iterator it(root_, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file(ec) || it->path().extension() != ".json")
            continue;
        fs::path key = it->path();
        key.replace_extension(".key");
        if (!fs::exists(key, ec))
            continue;       // not a cache entry; leave it alone
        Entry e;
        e.json = it->path();
        e.key = key;
        e.bytes = fs::file_size(e.json, ec) + fs::file_size(key, ec);
        e.used = fs::last_write_time(e.json, ec);
        entries.push_back(std::move(e));
    }
    for (const auto &e : entries) {
        ++stats.entries;
        stats.bytes += e.bytes;
    }
    if (stats.bytes <= maxBytes)
        return stats;
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.used != b.used)
                      return a.used < b.used;
                  return a.json < b.json;   // stable across equal mtimes
              });
    std::uint64_t held = stats.bytes;
    for (const auto &e : entries) {
        if (held <= maxBytes)
            break;
        // Key first: a half-removed entry must look like a miss, never
        // like a valid entry with missing bytes.
        fs::remove(e.key, ec);
        fs::remove(e.json, ec);
        held -= e.bytes;
        ++stats.evicted;
        stats.evictedBytes += e.bytes;
    }
    return stats;
}

} // namespace cellbw::core
