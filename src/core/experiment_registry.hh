/**
 * @file
 * The experiment registry: every bench as a named, runnable unit.
 *
 * A core::Experiment is (name, figure tag, description, body,
 * backend).  Bench translation units register themselves with
 * CELLBW_REGISTER_EXPERIMENT at static-initialization time; the
 * `cellbw` driver then lists, runs, schedules, caches, and compares
 * them uniformly, and each legacy per-figure binary is a one-line shim
 * over runExperimentCli() with its experiment's name baked in.
 *
 * The backend is the fifth, optional registration argument and
 * defaults to Backend::Sim, so sim experiments register exactly as
 * they always have; native experiments pass core::Backend::Native and
 * the driver routes cache/suite/serve decisions off it.
 *
 * @code
 *   namespace {
 *   int
 *   run(core::ExperimentContext &b)
 *   {
 *       b.header("Figure 8", "...");
 *       ...
 *       return b.finish();
 *   }
 *   } // namespace
 *   CELLBW_REGISTER_EXPERIMENT(fig08_spe_mem, "Fig. 8",
 *       "SPE<->memory DMA-elem bandwidth (paper Fig. 8)", run)
 * @endcode
 *
 * Names are unique; a duplicate registration is a programming error
 * and fatal()s.
 */

#ifndef CELLBW_CORE_EXPERIMENT_REGISTRY_HH
#define CELLBW_CORE_EXPERIMENT_REGISTRY_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/backend.hh"
#include "core/experiment_context.hh"

namespace cellbw::core
{

struct Experiment
{
    /** Unique name; doubles as the legacy binary name and CLI prog. */
    std::string name;
    /** Short provenance tag for `cellbw list` ("Fig. 8", "Abl. C"). */
    std::string figure;
    /** One-line description (also the --help banner). */
    std::string description;
    /** The experiment; returns the process exit code. */
    int (*body)(ExperimentContext &);
    /** Where the experiment's kernels run (sim unless registered
     *  otherwise). */
    Backend backend = Backend::Sim;
};

class ExperimentRegistry
{
  public:
    /** The process-wide registry. */
    static ExperimentRegistry &instance();

    /** Register @p e; fatal()s on a duplicate name. */
    void add(Experiment e);

    /** Lookup by name; nullptr when unknown. */
    const Experiment *find(const std::string &name) const;

    /** All experiments, sorted by name. */
    std::vector<const Experiment *> sorted() const;

    std::size_t size() const { return experiments_.size(); }

    /**
     * The `cellbw list` rendering of sorted(); with @p filter set,
     * only experiments of that backend (the --backend filter).
     */
    std::string listText(std::optional<Backend> filter = {}) const;

  private:
    std::map<std::string, Experiment> experiments_;
};

/**
 * The whole legacy-main lifecycle behind one call: look up @p name,
 * build its context, parse @p argv (argv[0] is ignored), run the body.
 * @return the process exit code; unknown names and parse errors
 * (including --help, matching the legacy binaries) return 1.
 */
int runExperimentCli(const std::string &name, int argc,
                     const char *const *argv);

} // namespace cellbw::core

/** Optional 5th argument: the backend (defaults to Backend::Sim). */
#define CELLBW_REGISTER_EXPERIMENT(name, figure, description, body, ...) \
    namespace {                                                         \
    const bool cellbw_experiment_reg_##name = [] {                      \
        ::cellbw::core::ExperimentRegistry::instance().add(             \
            {#name, figure, description, body __VA_OPT__(, )            \
             __VA_ARGS__});                                             \
        return true;                                                    \
    }();                                                                \
    } // namespace

#endif // CELLBW_CORE_EXPERIMENT_REGISTRY_HH
