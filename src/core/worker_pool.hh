/**
 * @file
 * A shared worker-thread pool for seed-sweep batching.
 *
 * Before the suite driver, every bench binary spun its own transient
 * pool inside each repeatRuns() call, so a campaign of 18 binaries
 * serialized at process boundaries and never overlapped one
 * experiment's tail with the next one's head.  `cellbw suite` instead
 * runs every selected experiment against ONE WorkerPool: each
 * experiment submits its placement-seed runs here (via
 * ParallelSpec::pool) and waits for its own batch, so at any moment
 * the pool's N workers are busy with whatever runs are ready,
 * regardless of which experiment they belong to.
 *
 * Tasks must be independent (the seed-sweep runs are: one private
 * CellSystem each) and must never submit-and-wait recursively —
 * waiting happens on the submitting thread, never on a worker.
 *
 * Shutdown semantics (the serve daemon's drain path depends on these
 * being exact):
 *  - shutdown() (or the destructor, which calls it) marks the pool
 *    stopping, drains every task already accepted — run to completion,
 *    never dropped — and joins the workers.  Idempotent and safe to
 *    call from multiple threads.
 *  - submit() after shutdown has begun throws sim::FatalError instead
 *    of silently dropping the task or racing a dead pool.  Callers
 *    that can race shutdown (the daemon) must stop admitting work
 *    before draining, which is exactly what the 503 path does.
 */

#ifndef CELLBW_CORE_WORKER_POOL_HH
#define CELLBW_CORE_WORKER_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cellbw::core
{

class WorkerPool
{
  public:
    /** Start @p workers threads; 0 means hardware_concurrency(). */
    explicit WorkerPool(unsigned workers);

    /** shutdown(): drains accepted tasks, then joins. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Enqueue @p fn; it runs on some worker, FIFO.  Throws
     * sim::FatalError once shutdown has begun — an accepted task is
     * guaranteed to run, so acceptance must be refused loudly rather
     * than dropped silently.
     */
    void submit(std::function<void()> fn);

    /**
     * Begin shutdown: refuse new submissions, run every already
     * accepted task to completion, join the workers.  Idempotent;
     * concurrent callers all block until the join finishes.
     */
    void shutdown();

    /** True once shutdown has begun (submit() would throw). */
    bool stopping() const;

    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stop_ = false;
    std::vector<std::thread> threads_;

    /** Serializes the join phase of concurrent shutdown() calls. */
    std::mutex joinMutex_;
    bool joined_ = false;
};

} // namespace cellbw::core

#endif // CELLBW_CORE_WORKER_POOL_HH
