/**
 * @file
 * A shared worker-thread pool for seed-sweep batching.
 *
 * Before the suite driver, every bench binary spun its own transient
 * pool inside each repeatRuns() call, so a campaign of 18 binaries
 * serialized at process boundaries and never overlapped one
 * experiment's tail with the next one's head.  `cellbw suite` instead
 * runs every selected experiment against ONE WorkerPool: each
 * experiment submits its placement-seed runs here (via
 * ParallelSpec::pool) and waits for its own batch, so at any moment
 * the pool's N workers are busy with whatever runs are ready,
 * regardless of which experiment they belong to.
 *
 * Tasks must be independent (the seed-sweep runs are: one private
 * CellSystem each) and must never submit-and-wait recursively —
 * waiting happens on the submitting thread, never on a worker.
 */

#ifndef CELLBW_CORE_WORKER_POOL_HH
#define CELLBW_CORE_WORKER_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cellbw::core
{

class WorkerPool
{
  public:
    /** Start @p workers threads; 0 means hardware_concurrency(). */
    explicit WorkerPool(unsigned workers);

    /** Drains the queue, then joins. */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Enqueue @p fn; it runs on some worker, FIFO. */
    void submit(std::function<void()> fn);

    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stop_ = false;
    std::vector<std::thread> threads_;
};

} // namespace cellbw::core

#endif // CELLBW_CORE_WORKER_POOL_HH
