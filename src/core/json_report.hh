/**
 * @file
 * Machine-readable bench reports (the --json flag).
 *
 * Every bench that opts in emits one JSON document per invocation with
 * a stable shape, so downstream tooling (plot scripts, CI validators,
 * regression trackers) can consume any bench uniformly:
 *
 * @code
 *   {
 *     "schema": "cellbw-bench-v3",
 *     "schema_version": 3,
 *     "bench": "fig08_spe_mem",
 *     "experiment": "fig08_spe_mem",
 *     "figure": "Fig. 8",
 *     "description": "SPE<->memory DMA bandwidth",
 *     "backend": "sim",                       // "sim" or "native"
 *     "reproducible": true,                   // false: measured, gate
 *                                             // with tolerances
 *     "suite": "ci",                          // only when part of one
 *     "cache": { "salt": "...", "key": "..." },  // only when computed
 *     "config": { "cpu-ghz": 2.1, "spes": 8, ... },
 *     "points": [ { "table": "results", "spes": 1, "GB/s": 9.8 }, ... ],
 *     "metrics": { "eib0.ring0.grants": 1234, ... }
 *   }
 * @endcode
 *
 * v3 (this version) adds `backend`/`reproducible` to the envelope and,
 * on measured backends, per-point statistics columns — native tables
 * carry median/p95/stddev/CV per point, flattened into `points` like
 * any other columns.
 *
 * `config` carries every registered command-line option with its final
 * (post-parse) value, typed: uints/doubles/bytes as numbers, bools as
 * booleans, strings as strings.  Result-neutral options (--json, --csv,
 * --jobs; see util::Options::setResultNeutral) are omitted since v2 so
 * the document depends only on what shaped the results — that is what
 * makes a cached report replayable bit-identically from any output
 * path.  `points` flattens each emitted result table row into one
 * object keyed by column header; cells that parse fully as numbers
 * become JSON numbers.  `metrics` is the accumulated
 * stats::MetricsRegistry snapshot across all runs of all points.
 *
 * `cellbw compare` accepts this document and both predecessors — v1
 * (no schema_version/experiment/suite/cache, config unfiltered) and v2
 * (no backend/reproducible) — so committed baselines keep working.
 */

#ifndef CELLBW_CORE_JSON_REPORT_HH
#define CELLBW_CORE_JSON_REPORT_HH

#include <string>
#include <vector>

#include "stats/metrics.hh"
#include "stats/table.hh"
#include "util/options.hh"

namespace cellbw::core
{

class JsonReport
{
  public:
    /** The `schema` string this writer emits. */
    static constexpr const char *kSchema = "cellbw-bench-v3";
    /** The numeric `schema_version`. */
    static constexpr int kSchemaVersion = 3;

    /** Identify the producing bench (shown in the document header). */
    void setBench(std::string bench, std::string figure,
                  std::string description);

    /** Registered experiment name; defaults to the bench name. */
    void setExperiment(std::string experiment);

    /** Suite id when this report is one experiment of a suite run. */
    void setSuite(std::string suite);

    /**
     * The executing backend and whether its results are bit-
     * reproducible (sim: yes; native: no — gate with tolerances).
     * Defaults to "sim"/true so bare reports stay valid v3.
     */
    void setBackend(std::string backend, bool reproducible);

    /** Result-cache identity (invalidation salt + content key). */
    void setCacheInfo(std::string salt, std::string key);

    /** Capture the final config: every option with its parsed value. */
    void setConfig(const util::Options &opts);

    /**
     * Append @p table's rows to `points`, each tagged with
     * @p tableName (benches emitting several tables stay
     * distinguishable downstream).
     */
    void addTable(const std::string &tableName, const stats::Table &table);

    /** The registry the seed sweep accumulates into. */
    stats::MetricsRegistry &metrics() { return metrics_; }
    const stats::MetricsRegistry &metrics() const { return metrics_; }

    /** Render the complete document. */
    std::string render() const;

    /** Write render() to @p path; false (errno set) on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    struct Point
    {
        std::string table;
        std::vector<std::string> headers;
        std::vector<std::string> cells;
    };

    std::string bench_;
    std::string experiment_;
    std::string figure_;
    std::string description_;
    std::string suite_;
    std::string backend_ = "sim";
    bool reproducible_ = true;
    std::string cacheSalt_;
    std::string cacheKey_;
    std::vector<util::Options::OptionInfo> config_;
    std::vector<Point> points_;
    stats::MetricsRegistry metrics_;
};

} // namespace cellbw::core

#endif // CELLBW_CORE_JSON_REPORT_HH
