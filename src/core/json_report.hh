/**
 * @file
 * Machine-readable bench reports (the --json flag).
 *
 * Every bench that opts in emits one JSON document per invocation with
 * a stable shape, so downstream tooling (plot scripts, CI validators,
 * regression trackers) can consume any bench uniformly:
 *
 * @code
 *   {
 *     "schema": "cellbw-bench-v1",
 *     "bench": "fig08_spe_mem",
 *     "figure": "Fig. 8",
 *     "description": "SPE<->memory DMA bandwidth",
 *     "config": { "cpu-ghz": 2.1, "spes": 8, ... },
 *     "points": [ { "table": "results", "spes": 1, "GB/s": 9.8 }, ... ],
 *     "metrics": { "eib0.ring0.grants": 1234, ... }
 *   }
 * @endcode
 *
 * `config` carries every registered command-line option with its final
 * (post-parse) value, typed: uints/doubles/bytes as numbers, bools as
 * booleans, strings as strings.  `points` flattens each emitted result
 * table row into one object keyed by column header; cells that parse
 * fully as numbers become JSON numbers.  `metrics` is the accumulated
 * stats::MetricsRegistry snapshot across all runs of all points.
 */

#ifndef CELLBW_CORE_JSON_REPORT_HH
#define CELLBW_CORE_JSON_REPORT_HH

#include <string>
#include <vector>

#include "stats/metrics.hh"
#include "stats/table.hh"
#include "util/options.hh"

namespace cellbw::core
{

class JsonReport
{
  public:
    /** Identify the producing bench (shown in the document header). */
    void setBench(std::string bench, std::string figure,
                  std::string description);

    /** Capture the final config: every option with its parsed value. */
    void setConfig(const util::Options &opts);

    /**
     * Append @p table's rows to `points`, each tagged with
     * @p tableName (benches emitting several tables stay
     * distinguishable downstream).
     */
    void addTable(const std::string &tableName, const stats::Table &table);

    /** The registry the seed sweep accumulates into. */
    stats::MetricsRegistry &metrics() { return metrics_; }
    const stats::MetricsRegistry &metrics() const { return metrics_; }

    /** Render the complete document. */
    std::string render() const;

    /** Write render() to @p path; false (errno set) on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    struct Point
    {
        std::string table;
        std::vector<std::string> headers;
        std::vector<std::string> cells;
    };

    std::string bench_;
    std::string figure_;
    std::string description_;
    std::vector<util::Options::OptionInfo> config_;
    std::vector<Point> points_;
    stats::MetricsRegistry metrics_;
};

} // namespace cellbw::core

#endif // CELLBW_CORE_JSON_REPORT_HH
