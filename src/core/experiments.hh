/**
 * @file
 * The paper's experiments as reusable bodies.
 *
 * Each run* function performs one experiment on a freshly built
 * CellSystem and returns the sustained bandwidth in GB/s computed
 * exactly as the paper does: bytes the benchmark moves (counting both
 * directions for copy) divided by elapsed time.
 *
 * Use core::repeatRuns() to execute a body over N placement-randomized
 * systems and obtain the min/max/median/mean distributions of
 * Figures 13 and 16.
 */

#ifndef CELLBW_CORE_EXPERIMENTS_HH
#define CELLBW_CORE_EXPERIMENTS_HH

#include <cstdint>

#include "cell/cell_system.hh"
#include "ppe/ppu.hh"

namespace cellbw::core
{

/** Operation for the DMA experiments. */
enum class DmaOp { Get, Put, Copy };

const char *toString(DmaOp op);
const char *toString(ppe::MemOp op);

/* ------------------------------------------------------------------ */
/*  PPE experiments (Figures 3, 4, 6)                                  */
/* ------------------------------------------------------------------ */

struct PpeStreamConfig
{
    unsigned threads = 1;           ///< 1 or 2 SMT threads
    unsigned elemSize = 16;         ///< 1, 2, 4, 8, 16 bytes
    ppe::MemOp op = ppe::MemOp::Load;
    std::uint64_t bufferBytes = 12 * util::KiB;  ///< per thread
    std::uint64_t totalBytes = 4 * util::MiB;    ///< per thread, swept
};

/** Buffer sizes that land the sweep in L1 / L2 / main memory. */
PpeStreamConfig ppeL1Config(unsigned threads, unsigned elem,
                            ppe::MemOp op);
PpeStreamConfig ppeL2Config(unsigned threads, unsigned elem,
                            ppe::MemOp op);
PpeStreamConfig ppeMemConfig(unsigned threads, unsigned elem,
                             ppe::MemOp op);

double runPpeStream(cell::CellSystem &sys, const PpeStreamConfig &cfg);

/* ------------------------------------------------------------------ */
/*  SPU <-> Local Store (Section 4.2.2)                                 */
/* ------------------------------------------------------------------ */

struct SpuLsConfig
{
    unsigned elemSize = 16;
    ppe::MemOp op = ppe::MemOp::Load;   // reuse Load/Store/Copy labels
    std::uint64_t totalBytes = 8 * util::MiB;
};

double runSpuLs(cell::CellSystem &sys, const SpuLsConfig &cfg);

/* ------------------------------------------------------------------ */
/*  SPE <-> main memory DMA (Figure 8)                                 */
/* ------------------------------------------------------------------ */

struct SpeMemConfig
{
    unsigned numSpes = 1;
    std::uint32_t elemBytes = 16 * 1024;
    DmaOp op = DmaOp::Get;
    bool useList = false;
    unsigned syncEvery = 0;             ///< 0 = delay sync to the end
    std::uint64_t bytesPerSpe = 4 * util::MiB;  ///< weak scaling
};

double runSpeMem(cell::CellSystem &sys, const SpeMemConfig &cfg);

/* ------------------------------------------------------------------ */
/*  SPE <-> SPE local-store DMA (Figures 10, 12, 13, 15, 16)           */
/* ------------------------------------------------------------------ */

/** Topology of the SPE-to-SPE experiments. */
enum class SpeSpeMode
{
    Couples,    ///< logical pairs (0,1),(2,3),..; even index initiates
    Cycle,      ///< every SPE initiates with its logical neighbor
};

struct SpeSpeConfig
{
    SpeSpeMode mode = SpeSpeMode::Couples;
    unsigned numSpes = 2;               ///< even, 2..8
    std::uint32_t elemBytes = 4 * 1024;
    bool useList = false;
    unsigned syncEvery = 0;
    std::uint64_t bytesPerStream = 4 * util::MiB;
};

double runSpeSpe(cell::CellSystem &sys, const SpeSpeConfig &cfg);

/* ------------------------------------------------------------------ */
/*  Random access (Chen & Bader; ROADMAP item 2)                       */
/* ------------------------------------------------------------------ */

/**
 * GUPS-style random updates: every SPE runs overlapped GET → update →
 * PUT chains against its own table of elemBytes granules at seeded
 * random addresses.  bytesPerSpe only sizes the run (the update count
 * is elemBytes-independent so the sweep's simulation cost is flat).
 */
struct RandGupsConfig
{
    unsigned numSpes = 8;
    std::uint32_t elemBytes = 8;        ///< update granule, 8..128 B
    std::uint64_t tableBytes = 4 * util::MiB;   ///< per SPE
    std::uint64_t bytesPerSpe = 4 * util::MiB;  ///< sizing knob
    unsigned slots = 8;                 ///< overlapped RMW chains
};

/** @return sustained update bandwidth in GB/s (GET + PUT bytes). */
double runRandGups(cell::CellSystem &sys, const RandGupsConfig &cfg);

/**
 * Pointer-chase / graph-traversal gather: every SPE reads a fixed
 * byte volume of randomly scattered elemBytes elements from its own
 * table, element-wise or as software-pipelined DMA-list gathers.
 */
struct RandChaseConfig
{
    unsigned numSpes = 4;
    std::uint32_t elemBytes = 16;
    std::uint64_t tableBytes = 4 * util::MiB;   ///< per SPE
    std::uint64_t bytesPerSpe = 4 * util::MiB;  ///< sizing knob
    bool useList = false;               ///< DMA-list vs element GETs
    unsigned elemsPerList = 256;
    unsigned slots = 4;                 ///< list pipeline depth
};

/** @return sustained gather bandwidth in GB/s. */
double runRandChase(cell::CellSystem &sys, const RandChaseConfig &cfg);

} // namespace cellbw::core

#endif // CELLBW_CORE_EXPERIMENTS_HH
