#include "core/backend.hh"

namespace cellbw::core
{

const char *
toString(Backend backend)
{
    switch (backend) {
      case Backend::Sim:
        return "sim";
      case Backend::Native:
        return "native";
    }
    return "sim";
}

bool
parseBackend(const std::string &text, Backend &out)
{
    if (text == "sim") {
        out = Backend::Sim;
        return true;
    }
    if (text == "native") {
        out = Backend::Native;
        return true;
    }
    return false;
}

const char *
knownBackends()
{
    return "sim, native";
}

bool
backendIsCacheable(Backend backend)
{
    return backend == Backend::Sim;
}

} // namespace cellbw::core
