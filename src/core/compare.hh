/**
 * @file
 * Report comparison: the regression gate behind `cellbw compare`.
 *
 * Diffs a candidate `cellbw-bench-v1`/`v2` report against a baseline,
 * point by point: points are grouped by table, matched by row index,
 * string cells must match exactly (they identify the point: op, elem,
 * topology), numeric cells must agree within a relative tolerance.  A
 * missing table, a missing row, or a missing column is a regression,
 * as is any out-of-tolerance value.  Metrics can be gated too
 * (opt-in, with their own tolerance).
 *
 * Tolerances are percentages relative to the baseline value:
 * candidate c passes against baseline b iff
 * |c - b| <= tol/100 * |b| (+epsilon), so `--tol 5` accepts a 5% move
 * in either direction.  Per-column overrides ("GB/s(mean)=10") take
 * precedence over the global tolerance.
 *
 * The exit contract makes committed BENCH_*.json files an enforced
 * baseline: compareReports() returns every divergence as text and CI
 * exits nonzero when any exists.
 */

#ifndef CELLBW_CORE_COMPARE_HH
#define CELLBW_CORE_COMPARE_HH

#include <map>
#include <string>
#include <vector>

namespace cellbw::core
{

struct ComparePolicy
{
    /** Accepted relative divergence, in percent of the baseline. */
    double tolPct = 0.0;

    /** Per-column overrides of tolPct, keyed by point column name. */
    std::map<std::string, double> columnTolPct;

    /** Also gate the `metrics` section. */
    bool includeMetrics = false;

    /** Tolerance for metrics (they are exact counters by default). */
    double metricsTolPct = 0.0;
};

struct CompareResult
{
    /** Human-readable divergences; empty means the gate passes. */
    std::vector<std::string> regressions;

    unsigned pointsCompared = 0;
    unsigned valuesCompared = 0;
    unsigned metricsCompared = 0;

    bool ok() const { return regressions.empty(); }
};

/**
 * Compare parsed report texts.  @return false only when a document is
 * malformed (message in @p err); tolerance failures are reported via
 * @p out.regressions with the gate still "successfully evaluated".
 */
bool compareReportTexts(const std::string &candidateText,
                        const std::string &baselineText,
                        const ComparePolicy &policy, CompareResult &out,
                        std::string &err);

/** compareReportTexts() over files. */
bool compareReportFiles(const std::string &candidatePath,
                        const std::string &baselinePath,
                        const ComparePolicy &policy, CompareResult &out,
                        std::string &err);

/**
 * Parse a "name=pct,name=pct" per-column tolerance spec (the --tols
 * flag).  @return false on a malformed entry.
 */
bool parseColumnTols(const std::string &spec,
                     std::map<std::string, double> &out,
                     std::string &err);

} // namespace cellbw::core

#endif // CELLBW_CORE_COMPARE_HH
