#include "core/json_report.hh"

#include <cstdio>
#include <cstdlib>

#include "stats/json_writer.hh"
#include "util/strings.hh"

namespace cellbw::core
{

namespace
{

/** True iff @p s parses fully as a finite JSON-able number. */
bool
parseNumber(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    const char *begin = s.c_str();
    char *end = nullptr;
    double v = std::strtod(begin, &end);
    if (end != begin + s.size())
        return false;
    out = v;
    return v == v && v <= 1.7976931348623157e308 &&
           v >= -1.7976931348623157e308;
}

void
writeCell(stats::JsonWriter &w, const std::string &cell)
{
    double num = 0.0;
    if (parseNumber(cell, num))
        w.raw(stats::JsonWriter::number(num));
    else
        w.value(cell);
}

} // namespace

void
JsonReport::setBench(std::string bench, std::string figure,
                     std::string description)
{
    bench_ = std::move(bench);
    figure_ = std::move(figure);
    description_ = std::move(description);
}

void
JsonReport::setExperiment(std::string experiment)
{
    experiment_ = std::move(experiment);
}

void
JsonReport::setSuite(std::string suite)
{
    suite_ = std::move(suite);
}

void
JsonReport::setBackend(std::string backend, bool reproducible)
{
    backend_ = std::move(backend);
    reproducible_ = reproducible;
}

void
JsonReport::setCacheInfo(std::string salt, std::string key)
{
    cacheSalt_ = std::move(salt);
    cacheKey_ = std::move(key);
}

void
JsonReport::setConfig(const util::Options &opts)
{
    config_ = opts.list();
}

void
JsonReport::addTable(const std::string &tableName,
                     const stats::Table &table)
{
    for (const auto &row : table.rows()) {
        Point p;
        p.table = tableName;
        p.headers = table.headers();
        p.cells = row;
        points_.push_back(std::move(p));
    }
}

std::string
JsonReport::render() const
{
    using util::Options;
    stats::JsonWriter w;
    w.beginObject();
    w.key("schema").value(kSchema);
    w.key("schema_version").value(kSchemaVersion);
    w.key("bench").value(bench_);
    w.key("experiment").value(experiment_.empty() ? bench_ : experiment_);
    w.key("figure").value(figure_);
    w.key("description").value(description_);
    w.key("backend").value(backend_);
    w.key("reproducible").value(reproducible_);
    if (!suite_.empty())
        w.key("suite").value(suite_);
    if (!cacheKey_.empty()) {
        w.key("cache").beginObject();
        w.key("salt").value(cacheSalt_);
        w.key("key").value(cacheKey_);
        w.endObject();
    }

    w.key("config").beginObject();
    for (const auto &o : config_) {
        if (o.resultNeutral)
            continue;
        w.key(o.name);
        switch (o.type) {
          case Options::OptionInfo::Type::Uint:
            w.value(util::parseUint64(o.text));
            break;
          case Options::OptionInfo::Type::Double:
            w.value(std::strtod(o.text.c_str(), nullptr));
            break;
          case Options::OptionInfo::Type::Bool: {
            std::string v = util::toLower(o.text);
            w.value(v == "true" || v == "1" || v == "yes");
            break;
          }
          case Options::OptionInfo::Type::Bytes:
            w.value(util::parseByteSize(o.text));
            break;
          case Options::OptionInfo::Type::String:
            w.value(o.text);
            break;
        }
    }
    w.endObject();

    w.key("points").beginArray();
    for (const auto &p : points_) {
        w.beginObject();
        w.key("table").value(p.table);
        for (std::size_t c = 0;
             c < p.headers.size() && c < p.cells.size(); ++c) {
            w.key(p.headers[c]);
            writeCell(w, p.cells[c]);
        }
        w.endObject();
    }
    w.endArray();

    w.key("metrics");
    metrics_.writeJson(w);

    w.endObject();
    return w.str();
}

bool
JsonReport::writeFile(const std::string &path) const
{
    std::string doc = render();
    doc += '\n';
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    bool ok = n == doc.size();
    if (std::fclose(f) != 0)
        ok = false;
    return ok;
}

} // namespace cellbw::core
