/**
 * @file
 * Per-invocation lifecycle of one experiment.
 *
 * ExperimentContext owns what every bench used to copy-paste as
 * `bench::BenchSetup`: the option set (machine knobs + --runs/--seed/
 * --jobs/--csv/--json/--quick/--bytes-per-spe), parse-time validation,
 * the figure header, table/CSV emission, and the closing --json report.
 * The registry (core::ExperimentRegistry) constructs one context per
 * run, parses the command line into it, and hands it to the registered
 * experiment body — the legacy per-figure binaries and `cellbw run`
 * share this exact path, which is what keeps their output
 * byte-identical.
 *
 * On top of the legacy lifecycle the context knows about suites and
 * the result cache: it computes the canonical cache key of its parsed
 * configuration, stamps suite/cache/backend metadata into the report,
 * can run quietly (suite mode: JSON only, no stdout), and stores its
 * finished report into an attached core::ResultCache (sim backend
 * only — native measurements are never cached).
 */

#ifndef CELLBW_CORE_EXPERIMENT_CONTEXT_HH
#define CELLBW_CORE_EXPERIMENT_CONTEXT_HH

#include <cstdarg>
#include <string>

#include "cell/config.hh"
#include "core/backend.hh"
#include "core/json_report.hh"
#include "core/runner.hh"
#include "stats/table.hh"
#include "util/options.hh"

namespace cellbw::core
{

class ResultCache;

class ExperimentContext
{
  public:
    util::Options opts;
    cell::CellConfig cfg;
    RepeatSpec repeat;
    ParallelSpec par;
    std::uint64_t bytesPerSpe = 0;
    bool csv = false;

    /**
     * The backend the experiment was registered for.  Fixed at
     * construction; --backend is accepted (it is part of the canonical
     * config) but parse() rejects a value that contradicts the
     * registration.  Native contexts default --warmup to 1 and never
     * store results into the cache.
     */
    Backend backend = Backend::Sim;

    /** --json target path; empty when no JSON report was requested. */
    std::string jsonPath;
    JsonReport json;

    ExperimentContext(std::string prog, std::string description,
                      Backend backend = Backend::Sim);

    /**
     * Parse argv and validate (--runs 0 and inconsistent machine
     * configs are rejected here, with a message on stderr).
     * @return false when the program should exit (help/error).
     */
    bool parse(int argc, const char *const *argv);

    /** Print the figure banner and stamp the report header. */
    void header(const char *figure, const char *what);

    /** Print @p table (and CSV if requested); add its rows as points. */
    void emit(const stats::Table &table,
              const std::string &name = "results");

    /** @name Body output (charts, reference lines).
     * Routed through the context so suite mode can silence it; bytes
     * are identical to direct printf when not quiet. */
    /** @{ */
    void print(const std::string &s);
    void printf(const char *fmt, ...)
        __attribute__((format(printf, 2, 3)));
    /** @} */

    /**
     * Write the --json report, if one was requested, and store it into
     * the attached cache, if any.  Call once, after the last emit().
     * @return the process exit code (0, or 1 when the report could not
     *         be written).
     */
    int finish();

    /** @name Suite/cache wiring (driver-side; bodies never call these). */
    /** @{ */
    /** Suppress all stdout; the JSON report is the only output. */
    void setQuiet(bool quiet) { quiet_ = quiet; }
    bool quiet() const { return quiet_; }

    /** Tag the report as one experiment of suite @p suiteId. */
    void setSuite(const std::string &suiteId);

    /** finish() will store the rendered report under cacheKey(). */
    void attachCache(ResultCache *cache) { cache_ = cache; }

    /** Canonical key material of the parsed config (post-parse). */
    const std::string &cacheMaterial() const { return cacheMaterial_; }

    /** Content hash of cacheMaterial() (post-parse). */
    const std::string &cacheKey() const { return cacheKey_; }
    /** @} */

  private:
    bool quiet_ = false;
    ResultCache *cache_ = nullptr;
    std::string cacheMaterial_;
    std::string cacheKey_;
};

} // namespace cellbw::core

#endif // CELLBW_CORE_EXPERIMENT_CONTEXT_HH
