/**
 * @file
 * SPU programs used by the bandwidth experiments.
 *
 * These are the simulator equivalents of the paper's hand-optimized C
 * microbenchmark kernels: streams of DMA-elem or DMA-list commands with
 * configurable synchronization delay, the manually unrolled "postpone
 * waiting for DMA transfers until the end" style the authors found
 * imperative for performance.
 */

#ifndef CELLBW_CORE_DMA_WORKLOADS_HH
#define CELLBW_CORE_DMA_WORKLOADS_HH

#include "cell/cell_system.hh"
#include "sim/task.hh"
#include "spe/dma_types.hh"

namespace cellbw::core
{

/** How a stream synchronizes with its DMA tags. */
struct SyncPolicy
{
    /**
     * Wait for the stream's tag after every @c every commands;
     * 0 means only once, after the last command (maximum delay, the
     * paper's recommendation).
     */
    unsigned every = 0;
};

/** Common description of one DMA stream run by one SPE. */
struct StreamSpec
{
    unsigned speIndex;          ///< logical SPE running the stream
    spe::DmaDir dir;            ///< Get or Put
    EffAddr base;               ///< EA the stream reads/writes
    std::uint64_t totalBytes;   ///< bytes to move
    std::uint32_t elemBytes;    ///< DMA element size
    bool useList = false;       ///< DMA-list instead of DMA-elem
    unsigned tag = 0;           ///< MFC tag group for this stream
    LsAddr lsBase = 0;          ///< local slot region base
    std::uint32_t lsBytes = 64 * 1024;  ///< local slot region size
    SyncPolicy sync;
    /** Stride the EA cyclically inside [base, base+eaWindow) instead of
     *  linearly; 0 = linear over totalBytes. */
    std::uint64_t eaWindow = 0;
};

/**
 * Stream of DMA commands from/to an effective-address range (main
 * memory or a peer's memory-mapped local store).
 */
sim::Task dmaStream(cell::CellSystem &sys, StreamSpec spec);

/**
 * The paper's SPE-to-SPE kernel: one SPE issuing GETs and PUTs
 * *alternately* against a peer ("we perform both read and write at the
 * same time"), so neither direction monopolizes the shared 16-entry
 * command queue.  GETs use tag group 0 (0-1 in list mode), PUTs tag
 * group 4 (4-5); syncEvery counts individual commands.
 */
struct DuplexSpec
{
    unsigned speIndex;
    EffAddr getBase;            ///< EA region GETs read
    EffAddr putBase;            ///< EA region PUTs write
    std::uint64_t bytesPerDir;  ///< bytes moved in each direction
    std::uint32_t elemBytes;
    bool useList = false;
    unsigned syncEvery = 0;
    LsAddr getLsBase = 0;       ///< landing slots for GET data
    LsAddr putLsBase = 0;       ///< source slots PUTs read
    std::uint32_t lsBytes = 64 * 1024;  ///< size of each slot region
    std::uint64_t eaWindow = 0; ///< cyclic EA window (0 = linear)
};

sim::Task dmaDuplexStream(cell::CellSystem &sys, DuplexSpec spec);

/**
 * The paper's memory copy: GET chunks into the LS, then PUT them back
 * to a different memory region, software-pipelined over @p slots LS
 * buffers.  Data really moves (src contents end up at dst).
 */
sim::Task dmaCopyStream(cell::CellSystem &sys, unsigned speIndex,
                        EffAddr src, EffAddr dst, std::uint64_t totalBytes,
                        std::uint32_t elemBytes, bool useList,
                        LsAddr lsBase, unsigned slots = 4);

/** Bytes one DMA-list command covers in list-mode streams (two such
 *  commands double-buffer inside the default 64 KB slot region). */
constexpr std::uint32_t listCommandBytes = 32 * 1024;

/**
 * GUPS-style random update stream: seeded random read-modify-write of
 * elemBytes granules over a table in main memory.  Each pipeline slot
 * owns one LS buffer and one tag and runs an independent GET → wait →
 * PUT → wait chain (the RMW dependency is real: the PUT cannot issue
 * before its GET data landed), so @ref slots chains overlap in the MFC
 * queue.  Element addresses come from a per-slot generator derived
 * from @ref seed, so the stream is a pure function of its spec.
 */
struct RandomUpdateSpec
{
    unsigned speIndex;          ///< logical SPE running the stream
    EffAddr tableBase;          ///< base EA of the update table
    std::uint64_t tableBytes;   ///< table size (multiple of elemBytes)
    std::uint64_t updates;      ///< read-modify-write operations
    std::uint32_t elemBytes;    ///< update granule (8..128 B)
    std::uint64_t seed;         ///< base seed of the address stream
    unsigned slots = 8;         ///< overlapped RMW chains (tags 0..)
    LsAddr lsBase = 0;          ///< LS region for the slot buffers
};

sim::Task randomUpdateStream(cell::CellSystem &sys, RandomUpdateSpec spec);

/**
 * Pointer-chase/graph-traversal gather: read totalBytes of randomly
 * scattered elemBytes elements from a table, either as element-wise
 * GETs (one MFC command per element) or as software-pipelined DMA-list
 * gathers of elemsPerList elements per command.  This is the Chen &
 * Bader graph-analysis access pattern; the interesting output is the
 * element-wise vs DMA-list crossover as elemBytes grows.
 */
struct RandomGatherSpec
{
    unsigned speIndex;          ///< logical SPE running the stream
    EffAddr tableBase;          ///< base EA of the gather table
    std::uint64_t tableBytes;   ///< table size (multiple of elemBytes)
    std::uint64_t totalBytes;   ///< bytes to gather
    std::uint32_t elemBytes;    ///< element size (8 B .. 16 KiB)
    bool useList = false;       ///< DMA-list gather vs element GETs
    unsigned elemsPerList = 256;///< list length in list mode
    std::uint64_t seed;         ///< seed of the address stream
    unsigned tag = 0;           ///< first MFC tag group
    LsAddr lsBase = 0;          ///< LS landing region
    std::uint32_t lsBytes = 64 * 1024;  ///< LS landing region size
    unsigned slots = 4;         ///< list-mode pipeline depth
};

sim::Task randomGatherStream(cell::CellSystem &sys, RandomGatherSpec spec);

} // namespace cellbw::core

#endif // CELLBW_CORE_DMA_WORKLOADS_HH
