/**
 * @file
 * The paper's future work, implemented: "we plan to use this experience
 * to evaluate small kernels (scalar product, matrix by vector, matrix
 * product, streaming benchmarks...)".
 *
 * Each kernel runs on real simulated SPEs: inputs stream through the
 * local stores by double-buffered DMA (following the paper's rules),
 * the SPU consumes cycles at its 8 single-precision flops/cycle peak
 * (4-wide SIMD madd), and the arithmetic is actually performed on the
 * simulated bytes so results are verified end to end.
 *
 * Together the kernels sweep arithmetic intensity from 0 (copy) to
 * ~16 flops/byte (blocked matrix multiply), reproducing the
 * roofline-style story of Williams et al. that the paper cites: below
 * the machine-balance point the measured bandwidth — not the headline
 * GFLOPS — decides performance.
 */

#ifndef CELLBW_CORE_KERNELS_HH
#define CELLBW_CORE_KERNELS_HH

#include <cstdint>
#include <string>

#include "cell/cell_system.hh"

namespace cellbw::core
{

enum class KernelKind
{
    Copy,       ///< c[i] = a[i]                (STREAM copy)
    Scale,      ///< c[i] = s * a[i]            (STREAM scale)
    Add,        ///< c[i] = a[i] + b[i]         (STREAM add)
    Triad,      ///< c[i] = a[i] + s * b[i]     (STREAM triad)
    Dot,        ///< sum(a[i] * b[i])           (scalar product)
    MatVec,     ///< y = A x                    (matrix by vector)
    MatMul,     ///< C = A B, 64x64 blocks      (matrix product)
};

const char *toString(KernelKind k);

/**
 * Numeric precision.  The paper: the CBE "can perform 4 single
 * precision operations per cycle on each SPE, but only one double
 * precision operation every 7 cycles" — a 2-way DP FMA every 7 cycles,
 * i.e. 4/7 DP flops/cycle against 8 SP flops/cycle (the 14:1 ratio of
 * Williams et al.).  DP elements are also twice the bytes, so
 * bandwidth-bound kernels lose a further 2x — Dongarra's argument for
 * doing the bulk of the work in single precision.
 */
enum class Precision { Single, Double };

struct KernelSpec
{
    KernelKind kind = KernelKind::Triad;

    /**
     * Problem size: vector elements for the streaming kernels and Dot;
     * the (square) matrix dimension for MatVec/MatMul.  MatMul requires
     * a multiple of 64; MatVec a multiple of 4 with dim*4 bytes <= 96 KB.
     */
    std::uint64_t n = 1 << 20;

    unsigned spes = 8;
    std::uint32_t chunkBytes = 16 * 1024;
    bool doubleBuffer = true;

    /** SPU single-precision flops per cycle (CBE: 4-wide madd = 8). */
    double flopsPerCycle = 8.0;

    /** SPU double-precision flops per cycle (CBE: 2-way FMA / 7 cyc). */
    double dpFlopsPerCycle = 4.0 / 7.0;

    /** Streaming kernels and Dot support Double; matvec/matmul are
     *  single-precision only. */
    Precision precision = Precision::Single;

    std::uint32_t elemBytes() const
    {
        return precision == Precision::Double ? 8 : 4;
    }

    double effectiveFlopsPerCycle() const
    {
        return precision == Precision::Double ? dpFlopsPerCycle
                                              : flopsPerCycle;
    }
};

struct KernelResult
{
    double seconds = 0.0;
    double gflops = 0.0;
    double gbps = 0.0;          ///< DMA bytes moved / time
    double intensity = 0.0;     ///< flops per DMA byte
    std::uint64_t flops = 0;
    std::uint64_t bytes = 0;
    bool verified = false;
    double maxError = 0.0;
};

/** Run @p spec on @p sys; inputs are generated and outputs verified. */
KernelResult runKernel(cell::CellSystem &sys, const KernelSpec &spec);

/** Compute-roof (GFLOPS) for @p spes SPEs under @p spec's machine. */
double computePeakGflops(const cell::CellSystem &sys,
                         const KernelSpec &spec);

} // namespace cellbw::core

#endif // CELLBW_CORE_KERNELS_HH
