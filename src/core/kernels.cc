#include "core/kernels.hh"

#include <cmath>
#include <vector>

#include "sim/logging.hh"
#include "util/align.hh"

namespace cellbw::core
{

namespace
{

/** Deterministic pseudo-random input data (cheap, no libm). */
float
valA(std::uint64_t i)
{
    return static_cast<float>((i * 2654435761ull >> 8) & 0xFFFF) /
               65536.0f - 0.5f;
}

float
valB(std::uint64_t i)
{
    return static_cast<float>((i * 0x9E3779B97F4A7C15ull >> 16) &
                              0xFFFF) / 65536.0f - 0.5f;
}

constexpr float scaleS = 3.0f;

/** Store a float array into simulated memory. */
void
writeFloats(mem::BackingStore &store, EffAddr ea,
            const std::vector<float> &v)
{
    store.write(ea, v.data(), v.size() * sizeof(float));
}

std::vector<float>
readFloats(const mem::BackingStore &store, EffAddr ea, std::uint64_t n)
{
    std::vector<float> v(n);
    store.read(ea, v.data(), n * sizeof(float));
    return v;
}

/** Per-element description of a streaming kernel. */
struct StreamOp
{
    bool usesB;
    bool writesC;
    bool reduces;
    double flopsPerElem;
};

StreamOp
streamOp(KernelKind k)
{
    switch (k) {
      case KernelKind::Copy:
        return {false, true, false, 0.0};
      case KernelKind::Scale:
        return {false, true, false, 1.0};
      case KernelKind::Add:
        return {true, true, false, 1.0};
      case KernelKind::Triad:
        return {true, true, false, 2.0};
      case KernelKind::Dot:
        return {true, false, true, 2.0};
      default:
        sim::panic("not a streaming kernel");
    }
}

float
applyOp(KernelKind k, float a, float b)
{
    switch (k) {
      case KernelKind::Copy:
        return a;
      case KernelKind::Scale:
        return scaleS * a;
      case KernelKind::Add:
        return a + b;
      case KernelKind::Triad:
        return a + scaleS * b;
      default:
        return 0.0f;
    }
}

/**
 * One SPE's share of a streaming kernel: double-buffered GETs of the
 * input chunk(s), compute at flopsPerCycle, PUT of the output chunk
 * (or a final 16-byte partial-sum PUT for reductions).
 */
sim::Task
streamWorker(cell::CellSystem &sys, KernelSpec spec, unsigned w,
             std::uint64_t lo, std::uint64_t hi, EffAddr aEa, EffAddr bEa,
             EffAddr cEa, EffAddr partialEa)
{
    auto &s = sys.spe(w);
    auto &mfc = s.mfc();
    const StreamOp op = streamOp(spec.kind);
    const std::uint32_t esz = spec.elemBytes();
    const std::uint32_t chunk_elems = spec.chunkBytes / esz;
    const unsigned nbuf = spec.doubleBuffer ? 2 : 1;

    LsAddr buf_a[2], buf_b[2] = {0, 0}, buf_c[2] = {0, 0};
    for (unsigned i = 0; i < nbuf; ++i)
        buf_a[i] = s.lsAlloc(spec.chunkBytes);
    if (op.usesB)
        for (unsigned i = 0; i < nbuf; ++i)
            buf_b[i] = s.lsAlloc(spec.chunkBytes);
    if (op.writesC)
        for (unsigned i = 0; i < nbuf; ++i)
            buf_c[i] = s.lsAlloc(spec.chunkBytes);
    LsAddr partial_ls = s.lsAlloc(16, 16);

    auto elems_of = [&](std::uint64_t c0) {
        return static_cast<std::uint32_t>(
            std::min<std::uint64_t>(chunk_elems, hi - lo - c0));
    };
    auto fetch = [&](std::uint64_t first, unsigned buf) -> sim::Task {
        std::uint32_t bytes = elems_of(first) * esz;
        co_await mfc.queueSpace();
        mfc.get(buf_a[buf], aEa + (lo + first) * esz, bytes, buf);
        if (op.usesB) {
            co_await mfc.queueSpace();
            mfc.get(buf_b[buf], bEa + (lo + first) * esz, bytes,
                    2 + buf);
        }
    };

    const std::uint64_t total = hi - lo;
    double partial = 0.0;
    // Raw chunk buffers, interpreted per the spec's precision.
    std::vector<std::uint8_t> va(spec.chunkBytes), vb(spec.chunkBytes),
        vc(spec.chunkBytes);
    auto compute = [&](std::uint32_t elems) {
        if (spec.precision == Precision::Single) {
            const auto *pa = reinterpret_cast<const float *>(va.data());
            const auto *pb = reinterpret_cast<const float *>(vb.data());
            auto *pc = reinterpret_cast<float *>(vc.data());
            if (op.reduces) {
                for (std::uint32_t i = 0; i < elems; ++i)
                    partial += static_cast<double>(pa[i]) * pb[i];
            } else {
                for (std::uint32_t i = 0; i < elems; ++i)
                    pc[i] = applyOp(spec.kind, pa[i],
                                    op.usesB ? pb[i] : 0.0f);
            }
        } else {
            const auto *pa =
                reinterpret_cast<const double *>(va.data());
            const auto *pb =
                reinterpret_cast<const double *>(vb.data());
            auto *pc = reinterpret_cast<double *>(vc.data());
            if (op.reduces) {
                for (std::uint32_t i = 0; i < elems; ++i)
                    partial += pa[i] * pb[i];
            } else {
                for (std::uint32_t i = 0; i < elems; ++i)
                    pc[i] = applyOp(spec.kind,
                                    static_cast<float>(pa[i]),
                                    op.usesB
                                        ? static_cast<float>(pb[i])
                                        : 0.0f);
            }
        }
    };

    co_await fetch(0, 0);
    for (std::uint64_t c0 = 0; c0 < total; c0 += chunk_elems) {
        unsigned cur = spec.doubleBuffer
                           ? static_cast<unsigned>((c0 / chunk_elems) % 2)
                           : 0;
        if (spec.doubleBuffer && c0 + chunk_elems < total)
            co_await fetch(c0 + chunk_elems, 1 - cur);

        // Wait for this chunk's inputs (tags also cover the previous
        // PUT from buf_c[cur], so the write buffer is free to reuse).
        std::uint32_t mask = 1u << cur;
        if (op.usesB)
            mask |= 1u << (2 + cur);
        if (op.writesC)
            mask |= 1u << (4 + cur);
        co_await mfc.tagWait(mask);

        std::uint32_t elems = elems_of(c0);
        s.ls().read(buf_a[cur], va.data(), elems * esz);
        if (op.usesB)
            s.ls().read(buf_b[cur], vb.data(), elems * esz);

        compute(elems);
        if (op.writesC)
            s.ls().write(buf_c[cur], vc.data(), elems * esz);
        auto cycles = static_cast<Tick>(
            op.flopsPerElem * elems / spec.effectiveFlopsPerCycle());
        if (cycles)
            co_await s.spu().cycles(cycles);

        if (op.writesC) {
            co_await mfc.queueSpace();
            mfc.put(buf_c[cur], cEa + (lo + c0) * esz, elems * esz,
                    4 + cur);
        }
        if (!spec.doubleBuffer && c0 + chunk_elems < total)
            co_await fetch(c0 + chunk_elems, 0);
    }
    if (op.reduces) {
        double slot[2] = {partial, 0.0};
        s.ls().write(partial_ls, slot, 16);
        co_await mfc.queueSpace();
        mfc.put(partial_ls, partialEa + w * 16, 16, 6);
    }
    co_await mfc.tagWait(0xFF);
}

/**
 * One SPE's share of y = A x.  The vector x lives LS-resident; rows of
 * A stream through in chunks; each SPE PUTs its slice of y at the end.
 */
sim::Task
matVecWorker(cell::CellSystem &sys, KernelSpec spec, unsigned w,
             std::uint64_t row_lo, std::uint64_t row_hi, EffAddr aEa,
             EffAddr xEa, EffAddr yEa)
{
    auto &s = sys.spe(w);
    auto &mfc = s.mfc();
    const auto n = static_cast<std::uint32_t>(spec.n);
    const std::uint32_t row_bytes = n * 4;
    const std::uint32_t rows_per_chunk =
        std::max<std::uint32_t>(1, spec.chunkBytes / row_bytes);
    const std::uint32_t chunk_bytes = rows_per_chunk * row_bytes;
    const unsigned nbuf = spec.doubleBuffer ? 2 : 1;

    LsAddr x_ls = s.lsAlloc(row_bytes, 16);
    LsAddr y_ls = s.lsAlloc(
        static_cast<std::uint32_t>((row_hi - row_lo) * 4), 16);
    LsAddr a_ls[2];
    for (unsigned i = 0; i < nbuf; ++i)
        a_ls[i] = s.lsAlloc(chunk_bytes, 16);

    // Bring in x (possibly several 16 KB commands).
    for (std::uint32_t off = 0; off < row_bytes; off += 16 * 1024) {
        std::uint32_t b =
            std::min<std::uint32_t>(16 * 1024, row_bytes - off);
        co_await mfc.queueSpace();
        mfc.get(x_ls + off, xEa + off, b, 7);
    }
    co_await mfc.tagWait(1u << 7);
    std::vector<float> x(n);
    s.ls().read(x_ls, x.data(), row_bytes);

    auto fetch_rows = [&](std::uint64_t r, unsigned buf) -> sim::Task {
        auto rows = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(rows_per_chunk, row_hi - r));
        std::uint32_t bytes = rows * row_bytes;
        for (std::uint32_t off = 0; off < bytes; off += 16 * 1024) {
            std::uint32_t b =
                std::min<std::uint32_t>(16 * 1024, bytes - off);
            co_await mfc.queueSpace();
            mfc.get(a_ls[buf] + off, aEa + r * row_bytes + off, b, buf);
        }
    };

    std::vector<float> rows_buf(rows_per_chunk * n);
    std::vector<float> y(row_hi - row_lo, 0.0f);

    co_await fetch_rows(row_lo, 0);
    for (std::uint64_t r = row_lo; r < row_hi; r += rows_per_chunk) {
        unsigned cur = spec.doubleBuffer
                           ? static_cast<unsigned>(
                                 ((r - row_lo) / rows_per_chunk) % 2)
                           : 0;
        if (spec.doubleBuffer && r + rows_per_chunk < row_hi)
            co_await fetch_rows(r + rows_per_chunk, 1 - cur);
        co_await mfc.tagWait(1u << cur);

        auto rows = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(rows_per_chunk, row_hi - r));
        s.ls().read(a_ls[cur], rows_buf.data(), rows * row_bytes);
        for (std::uint32_t i = 0; i < rows; ++i) {
            double acc = 0.0;
            const float *row = rows_buf.data() + i * n;
            for (std::uint32_t j = 0; j < n; ++j)
                acc += static_cast<double>(row[j]) * x[j];
            y[r - row_lo + i] = static_cast<float>(acc);
        }
        auto cycles = static_cast<Tick>(2.0 * rows * n /
                                        spec.flopsPerCycle);
        co_await s.spu().cycles(cycles);

        if (!spec.doubleBuffer && r + rows_per_chunk < row_hi)
            co_await fetch_rows(r + rows_per_chunk, 0);
    }

    s.ls().write(y_ls, y.data(), y.size() * 4);
    for (std::uint32_t off = 0; off < y.size() * 4; off += 16 * 1024) {
        auto b = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(16 * 1024, y.size() * 4 - off));
        co_await mfc.queueSpace();
        mfc.put(y_ls + off, yEa + row_lo * 4 + off, b, 6);
    }
    co_await mfc.tagWait(0xFF);
}

constexpr std::uint32_t blockDim = 64;
constexpr std::uint32_t blockBytes = blockDim * blockDim * 4;   // 16 KB

/** Block-major offset of block (bi, bj) in an nb x nb block matrix. */
std::uint64_t
blockOffset(std::uint32_t nb, std::uint32_t bi, std::uint32_t bj)
{
    return (static_cast<std::uint64_t>(bi) * nb + bj) * blockBytes;
}

/**
 * One SPE's share of C = A B with 64x64 blocks (matrices stored
 * block-major so each block is one contiguous 16 KB DMA).  Output
 * tiles round-robin across SPEs; the k-loop double-buffers the next
 * A/B block pair behind the current multiply.
 */
sim::Task
matMulWorker(cell::CellSystem &sys, KernelSpec spec, unsigned w,
             EffAddr aEa, EffAddr bEa, EffAddr cEa)
{
    auto &s = sys.spe(w);
    auto &mfc = s.mfc();
    const auto nb = static_cast<std::uint32_t>(spec.n / blockDim);
    const unsigned nbuf = spec.doubleBuffer ? 2 : 1;

    LsAddr a_ls[2], b_ls[2];
    for (unsigned i = 0; i < nbuf; ++i) {
        a_ls[i] = s.lsAlloc(blockBytes);
        b_ls[i] = s.lsAlloc(blockBytes);
    }
    LsAddr c_ls = s.lsAlloc(blockBytes);

    auto fetch_pair = [&](std::uint32_t bi, std::uint32_t bj,
                          std::uint32_t k, unsigned buf) -> sim::Task {
        co_await mfc.queueSpace();
        mfc.get(a_ls[buf], aEa + blockOffset(nb, bi, k), blockBytes,
                buf);
        co_await mfc.queueSpace();
        mfc.get(b_ls[buf], bEa + blockOffset(nb, k, bj), blockBytes,
                2 + buf);
    };

    std::vector<float> a(blockDim * blockDim), b(blockDim * blockDim);
    std::vector<float> c(blockDim * blockDim);

    for (std::uint64_t tile = w; tile < std::uint64_t(nb) * nb;
         tile += spec.spes) {
        auto bi = static_cast<std::uint32_t>(tile / nb);
        auto bj = static_cast<std::uint32_t>(tile % nb);
        std::fill(c.begin(), c.end(), 0.0f);

        co_await fetch_pair(bi, bj, 0, 0);
        for (std::uint32_t k = 0; k < nb; ++k) {
            unsigned cur = spec.doubleBuffer ? (k % 2) : 0;
            if (spec.doubleBuffer && k + 1 < nb)
                co_await fetch_pair(bi, bj, k + 1, 1 - cur);
            co_await mfc.tagWait((1u << cur) | (1u << (2 + cur)));

            s.ls().read(a_ls[cur], a.data(), blockBytes);
            s.ls().read(b_ls[cur], b.data(), blockBytes);
            for (std::uint32_t i = 0; i < blockDim; ++i) {
                for (std::uint32_t kk = 0; kk < blockDim; ++kk) {
                    float aik = a[i * blockDim + kk];
                    const float *brow = b.data() + kk * blockDim;
                    float *crow = c.data() + i * blockDim;
                    for (std::uint32_t j = 0; j < blockDim; ++j)
                        crow[j] += aik * brow[j];
                }
            }
            auto cycles = static_cast<Tick>(
                2.0 * blockDim * blockDim * blockDim /
                spec.flopsPerCycle);
            co_await s.spu().cycles(cycles);

            if (!spec.doubleBuffer && k + 1 < nb)
                co_await fetch_pair(bi, bj, k + 1, 0);
        }
        s.ls().write(c_ls, c.data(), blockBytes);
        co_await mfc.queueSpace();
        mfc.put(c_ls, cEa + blockOffset(nb, bi, bj), blockBytes, 6);
    }
    co_await mfc.tagWait(0xFF);
}

} // namespace

const char *
toString(KernelKind k)
{
    switch (k) {
      case KernelKind::Copy:
        return "copy";
      case KernelKind::Scale:
        return "scale";
      case KernelKind::Add:
        return "add";
      case KernelKind::Triad:
        return "triad";
      case KernelKind::Dot:
        return "dot";
      case KernelKind::MatVec:
        return "matvec";
      case KernelKind::MatMul:
        return "matmul";
    }
    return "?";
}

double
computePeakGflops(const cell::CellSystem &sys, const KernelSpec &spec)
{
    return spec.spes * spec.effectiveFlopsPerCycle() *
           sys.clock().cpuHz / 1e9;
}

KernelResult
runKernel(cell::CellSystem &sys, const KernelSpec &spec)
{
    if (spec.spes == 0 || spec.spes > sys.numSpes())
        sim::fatal("kernel: spes must be 1..%u", sys.numSpes());
    auto &store = sys.memory().store();
    KernelResult res;

    std::uint64_t mfc_before = 0;
    for (unsigned w = 0; w < spec.spes; ++w)
        mfc_before += sys.spe(w).mfc().bytesTransferred();
    Tick t0 = sys.now();

    switch (spec.kind) {
      case KernelKind::Copy:
      case KernelKind::Scale:
      case KernelKind::Add:
      case KernelKind::Triad:
      case KernelKind::Dot: {
        const StreamOp op = streamOp(spec.kind);
        const std::uint32_t esz = spec.elemBytes();
        if (spec.n % (spec.chunkBytes / esz) != 0)
            sim::fatal("kernel: n must be chunk-aligned");
        // Canonical data in the working precision.
        const bool dp = spec.precision == Precision::Double;
        std::vector<float> a, b;
        std::vector<double> da, db;
        EffAddr aEa = sys.malloc(spec.n * esz);
        if (dp) {
            da.resize(spec.n);
            for (std::uint64_t i = 0; i < spec.n; ++i)
                da[i] = valA(i);
            store.write(aEa, da.data(), spec.n * 8);
        } else {
            a.resize(spec.n);
            for (std::uint64_t i = 0; i < spec.n; ++i)
                a[i] = valA(i);
            writeFloats(store, aEa, a);
        }
        EffAddr bEa = 0, cEa = 0, pEa = 0;
        if (op.usesB) {
            bEa = sys.malloc(spec.n * esz);
            if (dp) {
                db.resize(spec.n);
                for (std::uint64_t i = 0; i < spec.n; ++i)
                    db[i] = valB(i);
                store.write(bEa, db.data(), spec.n * 8);
            } else {
                b.resize(spec.n);
                for (std::uint64_t i = 0; i < spec.n; ++i)
                    b[i] = valB(i);
                writeFloats(store, bEa, b);
            }
        }
        if (op.writesC)
            cEa = sys.malloc(spec.n * esz);
        if (op.reduces)
            pEa = sys.malloc(16 * spec.spes);

        std::uint64_t per = (spec.n + spec.spes - 1) / spec.spes;
        per = util::roundUp(per, spec.chunkBytes / esz);
        for (unsigned w = 0; w < spec.spes; ++w) {
            std::uint64_t lo = std::min<std::uint64_t>(w * per, spec.n);
            std::uint64_t hi =
                std::min<std::uint64_t>(lo + per, spec.n);
            if (lo >= hi)
                continue;
            sys.launch(streamWorker(sys, spec, w, lo, hi, aEa, bEa,
                                    cEa, pEa));
        }
        sys.run();

        res.flops = static_cast<std::uint64_t>(op.flopsPerElem * spec.n);
        // Verify.
        res.verified = true;
        auto in_a = [&](std::uint64_t i) {
            return dp ? da[i] : static_cast<double>(a[i]);
        };
        auto in_b = [&](std::uint64_t i) {
            return dp ? db[i] : static_cast<double>(b[i]);
        };
        if (op.reduces) {
            double expect = 0.0;
            for (std::uint64_t i = 0; i < spec.n; ++i)
                expect += in_a(i) * in_b(i);
            double got = 0.0;
            for (unsigned w = 0; w < spec.spes; ++w) {
                double slot[2];
                store.read(pEa + w * 16, slot, 16);
                got += slot[0];
            }
            res.maxError = std::fabs(got - expect) /
                           std::max(1.0, std::fabs(expect));
            res.verified = res.maxError < 1e-6;
        } else if (dp) {
            std::vector<double> c(spec.n);
            store.read(cEa, c.data(), spec.n * 8);
            for (std::uint64_t i = 0; i < spec.n; ++i) {
                double expect = applyOp(
                    spec.kind, static_cast<float>(da[i]),
                    op.usesB ? static_cast<float>(db[i]) : 0.0f);
                double err = std::fabs(c[i] - expect);
                res.maxError = std::max(res.maxError, err);
                if (err > 1e-12)
                    res.verified = false;
            }
        } else {
            auto c = readFloats(store, cEa, spec.n);
            for (std::uint64_t i = 0; i < spec.n; ++i) {
                float expect = applyOp(spec.kind, a[i],
                                       op.usesB ? b[i] : 0.0f);
                double err = std::fabs(c[i] - expect);
                res.maxError = std::max(res.maxError, err);
                if (err != 0.0)
                    res.verified = false;
            }
        }
        break;
      }
      case KernelKind::MatVec: {
        if (spec.precision == Precision::Double)
            sim::fatal("matvec: double precision not supported");
        const auto n = static_cast<std::uint32_t>(spec.n);
        if (n == 0 || n % 4 != 0 || n > 4096)
            sim::fatal("matvec: n must be a multiple of 4, <= 4096");
        std::vector<float> A(std::uint64_t(n) * n), x(n);
        for (std::uint64_t i = 0; i < A.size(); ++i)
            A[i] = valA(i);
        for (std::uint32_t j = 0; j < n; ++j)
            x[j] = valB(j);
        EffAddr aEa = sys.malloc(A.size() * 4);
        EffAddr xEa = sys.malloc(n * 4);
        EffAddr yEa = sys.malloc(n * 4);
        writeFloats(store, aEa, A);
        writeFloats(store, xEa, x);

        std::uint64_t rows = (n + spec.spes - 1) / spec.spes;
        for (unsigned w = 0; w < spec.spes; ++w) {
            std::uint64_t lo = std::min<std::uint64_t>(w * rows, n);
            std::uint64_t hi =
                std::min<std::uint64_t>(lo + rows, n);
            if (lo >= hi)
                continue;
            sys.launch(matVecWorker(sys, spec, w, lo, hi, aEa, xEa,
                                    yEa));
        }
        sys.run();

        res.flops = 2ull * n * n;
        auto y = readFloats(store, yEa, n);
        res.verified = true;
        for (std::uint32_t i = 0; i < n; ++i) {
            double expect = 0.0;
            for (std::uint32_t j = 0; j < n; ++j)
                expect += static_cast<double>(A[std::uint64_t(i) * n + j]) *
                          x[j];
            double err = std::fabs(y[i] - expect) /
                         std::max(1.0, std::fabs(expect));
            res.maxError = std::max(res.maxError, err);
            if (err > 1e-5)
                res.verified = false;
        }
        break;
      }
      case KernelKind::MatMul: {
        if (spec.precision == Precision::Double)
            sim::fatal("matmul: double precision not supported");
        const auto n = static_cast<std::uint32_t>(spec.n);
        if (n == 0 || n % blockDim != 0)
            sim::fatal("matmul: n must be a multiple of %u", blockDim);
        const std::uint32_t nb = n / blockDim;
        // Block-major storage: block (bi,bj) is contiguous.
        std::vector<float> A(std::uint64_t(n) * n), B(A.size());
        for (std::uint64_t i = 0; i < A.size(); ++i) {
            A[i] = valA(i);
            B[i] = valB(i);
        }
        EffAddr aEa = sys.malloc(A.size() * 4);
        EffAddr bEa = sys.malloc(B.size() * 4);
        EffAddr cEa = sys.malloc(A.size() * 4);
        writeFloats(store, aEa, A);
        writeFloats(store, bEa, B);

        for (unsigned w = 0; w < spec.spes; ++w)
            sys.launch(matMulWorker(sys, spec, w, aEa, bEa, cEa));
        sys.run();

        res.flops = 2ull * n * n * n;
        // Verify block (0,0) and one other block fully (a full host
        // O(n^3) check is done for small n).
        res.verified = true;
        auto block = [&](const std::vector<float> &m, std::uint32_t bi,
                         std::uint32_t bj, std::uint32_t i,
                         std::uint32_t j) {
            return m[blockOffset(nb, bi, bj) / 4 + i * blockDim + j];
        };
        auto C = readFloats(store, cEa, A.size());
        unsigned tiles_checked = (n <= 256) ? nb * nb : 2;
        for (unsigned t = 0; t < tiles_checked; ++t) {
            std::uint32_t bi = t / nb;
            std::uint32_t bj = t % nb;
            for (std::uint32_t i = 0; i < blockDim; i += 7) {
                for (std::uint32_t j = 0; j < blockDim; j += 5) {
                    double expect = 0.0;
                    for (std::uint32_t k = 0; k < nb; ++k)
                        for (std::uint32_t kk = 0; kk < blockDim; ++kk)
                            expect += static_cast<double>(
                                          block(A, bi, k, i, kk)) *
                                      block(B, k, bj, kk, j);
                    double got = block(C, bi, bj, i, j);
                    double err = std::fabs(got - expect) /
                                 std::max(1.0, std::fabs(expect));
                    res.maxError = std::max(res.maxError, err);
                    if (err > 1e-4)
                        res.verified = false;
                }
            }
        }
        break;
      }
    }

    Tick elapsed = sys.now() - t0;
    std::uint64_t mfc_after = 0;
    for (unsigned w = 0; w < spec.spes; ++w)
        mfc_after += sys.spe(w).mfc().bytesTransferred();
    res.bytes = mfc_after - mfc_before;
    res.seconds = sys.clock().seconds(elapsed);
    if (res.seconds > 0.0) {
        res.gflops = res.flops / res.seconds / 1e9;
        res.gbps = res.bytes / res.seconds / 1e9;
    }
    if (res.bytes)
        res.intensity = static_cast<double>(res.flops) / res.bytes;
    return res;
}

} // namespace cellbw::core
