/**
 * @file
 * Content-addressed cache of finished experiment reports.
 *
 * A bench result is a pure function of (experiment name, canonical
 * post-parse configuration, seed range) under one version of the
 * simulator — the whole repo is built around that determinism (the
 * parallel runner's bit-identical merge, the CI --jobs equality
 * checks).  The cache exploits it: the canonical description hashes to
 * a key, a hit replays the stored `cellbw-bench-v2` JSON bytes without
 * simulating anything, a miss runs and populates.
 *
 * Layout under the root (default `.cellbw-cache/`):
 *
 *   <root>/<k[0..1]>/<key>.json   the report, byte-exact
 *   <root>/<k[0..1]>/<key>.key    the key material, for validation
 *
 * The material file makes hits self-validating: load() re-checks the
 * stored material against the request, so a (vanishingly unlikely)
 * hash collision or a corrupted entry degrades to a miss, never to a
 * wrong result.
 *
 * Invalidation is by salt: salt() names the result-affecting code
 * version and is mixed into every key.  Bump kSalt whenever a change
 * can alter simulated results (timing model, RNG stream, report
 * contents) and every stale entry silently misses.  Result-neutral
 * flags (--jobs/--json/--csv) are excluded from the material, so runs
 * differing only in host scheduling or output share an entry.
 */

#ifndef CELLBW_CORE_RESULT_CACHE_HH
#define CELLBW_CORE_RESULT_CACHE_HH

#include <optional>
#include <string>

#include "util/options.hh"

namespace cellbw::util
{
class FileLock;
}

namespace cellbw::core
{

class ResultCache
{
  public:
    /**
     * The code-version salt.  Bump the trailing integer with any
     * change that can alter experiment results or report bytes.
     */
    static constexpr const char *kSalt = "cellbw-results-4";

    static const char *salt() { return kSalt; }

    /**
     * Canonical key material for @p experiment under @p opts: salt,
     * report schema, experiment name, and every non-result-neutral
     * option as `name=value` with the value re-rendered from its
     * parsed form (so `--bytes-per-spe 4M` and `=4MiB` agree).
     */
    static std::string materialFor(const std::string &experiment,
                                   const util::Options &opts);

    /** 64-bit FNV-1a of @p material, as 16 hex chars. */
    static std::string hashKey(const std::string &material);

    explicit ResultCache(std::string root = ".cellbw-cache");

    const std::string &root() const { return root_; }

    /**
     * The stored report bytes for @p key, or nullopt on miss.  The
     * stored material must equal @p material or the entry is treated
     * as a miss (collision/corruption guard).  A torn entry (valid
     * .key, missing/corrupt .json) is removed under the writer lock so
     * the whole pair reads as a clean miss everywhere, then reruns.
     */
    std::optional<std::string> load(const std::string &key,
                                    const std::string &material) const;

    /**
     * Store @p reportBytes under @p key; false on I/O failure.  Holds
     * the cross-process advisory lock (`<root>/.lock`) while writing
     * so parallel writers and prune() serialize; the write itself is
     * temp-file + rename, so even unlocked readers never see a torn
     * file.
     */
    bool store(const std::string &key, const std::string &material,
               const std::string &reportBytes) const;

    /** What prune() scanned and evicted. */
    struct PruneStats
    {
        std::uint64_t entries = 0;      ///< entries found
        std::uint64_t bytes = 0;        ///< bytes found (.json + .key)
        std::uint64_t evicted = 0;      ///< entries removed
        std::uint64_t evictedBytes = 0; ///< bytes removed
    };

    /**
     * Evict least-recently-used entries until the cache holds at most
     * @p maxBytes (0 empties it).  Recency is the entry's file mtime;
     * load() refreshes it on every hit, so the order is true LRU, not
     * insertion order.  Unpaired/foreign files are left alone, as are
     * entries whose stat fails mid-scan (e.g. racing an unlocked
     * deleter).  Runs under the cross-process advisory lock.
     */
    PruneStats prune(std::uint64_t maxBytes) const;

    /** True iff @p report parses as a document of our schema. */
    static bool validReport(const std::string &report);

  private:
    std::string dirFor(const std::string &key) const;
    std::string lockPath() const;

    /** Create the root and take the advisory lock; false = proceed
     *  unlocked (best effort). */
    bool lockRoot(util::FileLock &lock) const;

    /** Remove a torn (.key without valid .json) entry under the lock. */
    void recoverTornEntry(const std::string &base,
                          const std::string &material) const;

    std::string root_;
};

} // namespace cellbw::core

#endif // CELLBW_CORE_RESULT_CACHE_HH
