#include "core/advisor.hh"

#include "util/strings.hh"

namespace cellbw::core
{

std::vector<Advice>
advise(const DmaPlan &plan)
{
    std::vector<Advice> out;
    auto hint = [&](const char *rule, std::string msg) {
        out.push_back({Advice::Severity::Hint, rule, std::move(msg)});
    };
    auto warning = [&](const char *rule, std::string msg) {
        out.push_back({Advice::Severity::Warning, rule, std::move(msg)});
    };

    if (plan.elemBytes < 128) {
        warning("tiny-dma-elements",
                util::format("DMA elements of %u bytes suffer severe "
                             "degradation; use at least 128 bytes",
                             plan.elemBytes));
    }
    if (plan.elemBytes < 1024 && !plan.useList) {
        warning("dma-list-small-elems",
                util::format("DMA-elem transfers lose bandwidth below "
                             "1024 bytes (%u requested); DMA lists keep "
                             "peak bandwidth at any element size",
                             plan.elemBytes));
    }
    if (plan.syncEvery == 1) {
        warning("delayed-sync",
                "waiting after every DMA request drains the MFC queue; "
                "delay tag synchronization as long as possible");
    } else if (plan.syncEvery > 1 && plan.syncEvery < 8) {
        hint("delayed-sync",
             util::format("synchronizing every %u requests still leaves "
                          "bandwidth on the table for 1-8 KB elements; "
                          "saturate the 16-entry MFC queue first",
                          plan.syncEvery));
    }
    if (!plan.speToSpe && plan.spesPerStream == 1 && plan.streams == 1) {
        hint("parallel-memory-access",
             "a single SPE sustains only ~60% of one bank's bandwidth "
             "to main memory; two SPEs reading in parallel nearly "
             "double it");
    }
    if (!plan.speToSpe && plan.spesPerStream >= 8) {
        warning("two-streams-beat-one",
                "8 SPEs on one memory stream saturate the EIB rings; "
                "two independent streams of 4 SPEs each can be more "
                "efficient");
    }
    if (plan.speToSpe && plan.spesPerStream * plan.streams > 4) {
        hint("eib-saturation",
             "more than 4 concurrent SPE-to-SPE transfers exceed the "
             "4 EIB rings; schedule communications to avoid path "
             "conflicts (physical placement is not controllable "
             "through libspe 1.1)");
    }
    if (plan.ppeElemBytes != 0 && plan.ppeElemBytes < 8) {
        warning("ppe-pack-elements",
                util::format("PPE bandwidth scales with element size "
                             "(%u bytes requested); pack data into 8-16 "
                             "byte (VMX) accesses", plan.ppeElemBytes));
    }
    if (plan.ppeBulkTransfers) {
        warning("ppe-bulk-transfers",
                "PPE load/store bandwidth to main memory is under "
                "6 GB/s; use SPE DMA (up to ~20 GB/s aggregate) for "
                "bulk data movement");
    }
    return out;
}

std::string
renderAdvice(const std::vector<Advice> &advice)
{
    if (advice.empty())
        return "  (no rule violations: the plan follows the paper's "
               "guidelines)\n";
    std::string out;
    for (const auto &a : advice) {
        out += util::format(
            "  [%s] %s: %s\n",
            a.severity == Advice::Severity::Warning ? "warn" : "hint",
            a.rule.c_str(), a.message.c_str());
    }
    return out;
}

} // namespace cellbw::core
