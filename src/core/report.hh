/**
 * @file
 * Shared reporting helpers for the bench binaries.
 */

#ifndef CELLBW_CORE_REPORT_HH
#define CELLBW_CORE_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stats/distribution.hh"

namespace cellbw::core
{

/** The paper's DMA element-size sweep: 128 B .. 16 KB, powers of two. */
std::vector<std::uint32_t> elemSweepSizes();

/** The paper's PPE access sweep: 1, 2, 4, 8, 16 bytes. */
std::vector<unsigned> ppeElemSizes();

/** "128B", "1KiB", ... */
std::string elemLabel(std::uint32_t bytes);

/** {mean} formatted, or {min,max,median,mean} when @p full. */
std::vector<std::string> distCells(const stats::Distribution &d,
                                   bool full = false);

/** Column headers matching distCells(). */
std::vector<std::string> distHeaders(bool full = false);

} // namespace cellbw::core

#endif // CELLBW_CORE_REPORT_HH
