#include "core/validate.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <map>
#include <set>

#include "core/experiment_registry.hh"
#include "core/json_report.hh"
#include "core/oracle.hh"
#include "core/suite.hh"
#include "stats/json_writer.hh"
#include "stats/table.hh"
#include "util/file.hh"
#include "util/json.hh"
#include "util/strings.hh"

namespace cellbw::core
{

namespace
{

constexpr const char *kPaperSchema = "cellbw-paper-v1";

/** One loaded report plus its derived analytic oracle. */
struct LoadedReport
{
    util::JsonValue doc;
    std::vector<const util::JsonValue *> points;
    Oracle oracle{cell::CellConfig{}};
};

/** A check plus where it came from, for error messages. */
struct LoadedCheck
{
    std::string file;
    std::string defaultExperiment;
    const util::JsonValue *check = nullptr;
};

/** Setup-phase failure (malformed baseline, missing file, ...). */
struct SetupError
{
    std::string message;
};

[[noreturn]] void
setupFail(const std::string &message)
{
    throw SetupError{message};
}

/**
 * Numeric view of a point cell: numbers as-is, byte-size labels
 * ("128B", "1KiB") as bytes, the sync sweep's "all" as +infinity.
 */
bool
numericValue(const util::JsonValue &v, double &out)
{
    if (v.isNumber()) {
        out = v.number();
        return true;
    }
    if (!v.isString())
        return false;
    const std::string &s = v.str();
    if (s == "all") {
        out = std::numeric_limits<double>::infinity();
        return true;
    }
    const char *begin = s.c_str();
    char *end = nullptr;
    double num = std::strtod(begin, &end);
    if (end == begin)
        return false;
    std::string suffix(end);
    double scale = 0.0;
    if (suffix.empty() || suffix == "B")
        scale = 1.0;
    else if (suffix == "KiB" || suffix == "KB")
        scale = 1024.0;
    else if (suffix == "MiB" || suffix == "MB")
        scale = 1024.0 * 1024.0;
    else if (suffix == "GiB" || suffix == "GB")
        scale = 1024.0 * 1024.0 * 1024.0;
    else
        return false;
    out = num * scale;
    return true;
}

/** Does @p cell satisfy matcher @p m (see validate.hh header)? */
bool
matchOne(const util::JsonValue &cell, const util::JsonValue &m)
{
    switch (m.kind()) {
      case util::JsonValue::Kind::String:
        return cell.isString() && cell.str() == m.str();
      case util::JsonValue::Kind::Number: {
        double x = 0.0;
        return numericValue(cell, x) && x == m.number();
      }
      case util::JsonValue::Kind::Array: {
        for (const auto &alt : m.array()) {
            if (matchOne(cell, alt))
                return true;
        }
        return false;
      }
      case util::JsonValue::Kind::Object: {
        double x = 0.0;
        if (!numericValue(cell, x))
            return false;
        if (const auto *lo = m.find("min")) {
            if (!lo->isNumber() || x < lo->number())
                return false;
        }
        if (const auto *hi = m.find("max")) {
            if (!hi->isNumber() || x > hi->number())
                return false;
        }
        return true;
      }
      default:
        return false;
    }
}

bool
pointMatches(const util::JsonValue &point, const util::JsonValue &select)
{
    for (const auto &m : select.object()) {
        const util::JsonValue *cell = point.find(m.first);
        if (!cell || !matchOne(*cell, m.second))
            return false;
    }
    return true;
}

/** "op=GET spes=8 elem=16KiB" — the point's identity for diagnostics. */
std::string
describePoint(const util::JsonValue &point)
{
    std::string out;
    for (const auto &m : point.object()) {
        if (m.first == "table")
            continue;
        std::string text;
        if (m.second.isString())
            text = m.second.str();
        else if (m.second.isNumber())
            text = stats::JsonWriter::number(m.second.number());
        else
            continue;
        if (!out.empty())
            out += ' ';
        out += m.first + "=" + text;
    }
    return out;
}

const std::string &
requireString(const LoadedCheck &c, const util::JsonValue &obj,
              const char *key)
{
    const util::JsonValue *v = obj.find(key);
    if (!v || !v->isString()) {
        setupFail(util::format("%s: check '%s' needs a string '%s'",
                               c.file.c_str(),
                               c.check->find("rule") &&
                                       c.check->find("rule")->isString()
                                   ? c.check->find("rule")->str().c_str()
                                   : "?",
                               key));
    }
    return v->str();
}

double
numberOr(const util::JsonValue &obj, const char *key, double def)
{
    const util::JsonValue *v = obj.find(key);
    if (!v)
        return def;
    if (!v->isNumber())
        setupFail(util::format("'%s' must be a number", key));
    return v->number();
}

std::string
stringOr(const util::JsonValue &obj, const char *key,
         const std::string &def)
{
    const util::JsonValue *v = obj.find(key);
    if (!v)
        return def;
    if (!v->isString())
        setupFail(util::format("'%s' must be a string", key));
    return v->str();
}

/** The points of one experiment's report, by select. */
std::vector<const util::JsonValue *>
selectPoints(const LoadedReport &report, const util::JsonValue &select)
{
    if (!select.isObject())
        setupFail("'select' must be an object of column matchers");
    std::vector<const util::JsonValue *> out;
    for (const auto *p : report.points) {
        if (pointMatches(*p, select))
            out.push_back(p);
    }
    return out;
}

/** A column's numeric value in @p point, or a setup error. */
bool
columnValue(const util::JsonValue &point, const std::string &column,
            double &out)
{
    const util::JsonValue *cell = point.find(column);
    return cell && numericValue(*cell, out);
}

struct Evaluator
{
    const std::map<std::string, LoadedReport> &reports;

    const LoadedReport &
    reportFor(const LoadedCheck &c, const std::string &experiment) const
    {
        auto it = reports.find(experiment);
        if (it == reports.end()) {
            setupFail(util::format(
                "%s: check references experiment '%s' which is not "
                "part of this validation run",
                c.file.c_str(), experiment.c_str()));
        }
        return it->second;
    }

    /** Resolve a bound that may be absolute or oracle-relative. */
    void
    resolveBounds(const LoadedCheck &c, const LoadedReport &report,
                  const util::JsonValue &check, double &lo, double &hi,
                  std::string &boundDesc) const
    {
        lo = -std::numeric_limits<double>::infinity();
        hi = std::numeric_limits<double>::infinity();
        std::string desc;
        if (const auto *v = check.find("min")) {
            lo = v->number();
            desc += util::format("min %.4g", lo);
        }
        if (const auto *v = check.find("max")) {
            hi = v->number();
            if (!desc.empty())
                desc += ", ";
            desc += util::format("max %.4g", hi);
        }
        if (const auto *o = check.find("oracle")) {
            if (!o->isString())
                setupFail(util::format("%s: 'oracle' must name a peak",
                                       c.file.c_str()));
            double peak = 0.0;
            if (!report.oracle.peak(o->str(), peak)) {
                setupFail(util::format("%s: unknown oracle peak '%s'",
                                       c.file.c_str(),
                                       o->str().c_str()));
            }
            const double relLo = numberOr(check, "rel_min", 0.0);
            const double relHi = numberOr(
                check, "rel_max",
                std::numeric_limits<double>::infinity());
            lo = std::max(lo, relLo * peak);
            hi = std::min(hi, relHi * peak);
            if (!desc.empty())
                desc += ", ";
            desc += util::format("oracle %s=%.4g x [%.3g, %.3g]",
                                 o->str().c_str(), peak, relLo, relHi);
        }
        boundDesc = util::format("[%.4g, %.4g] GB/s (%s)", lo, hi,
                                 desc.empty() ? "unbounded" : desc.c_str());
    }

    CheckOutcome
    evalBand(const LoadedCheck &c, CheckOutcome out) const
    {
        const util::JsonValue &check = *c.check;
        const LoadedReport &report = reportFor(c, out.experiment);
        const std::string &column = requireString(c, check, "column");
        auto points = selectPoints(report, *check.find("select"));
        if (points.empty()) {
            out.status = CheckOutcome::Status::Fail;
            out.detail = "selection matched no points";
            return out;
        }
        double lo = 0, hi = 0;
        std::string bounds;
        resolveBounds(c, report, check, lo, hi, bounds);

        std::string bad;
        for (const auto *p : points) {
            double v = 0.0;
            if (!columnValue(*p, column, v)) {
                out.status = CheckOutcome::Status::Fail;
                out.detail = util::format(
                    "point %s has no numeric column '%s'",
                    describePoint(*p).c_str(), column.c_str());
                return out;
            }
            if (v < lo || v > hi) {
                bad += util::format("\n    point %s: %s=%.4g outside %s",
                                    describePoint(*p).c_str(),
                                    column.c_str(), v, bounds.c_str());
            }
        }
        if (!bad.empty()) {
            out.status = CheckOutcome::Status::Fail;
            const auto badCount = static_cast<std::size_t>(
                std::count(bad.begin(), bad.end(), '\n'));
            out.detail = util::format("%zu/%zu points out of band:",
                                      badCount, points.size()) + bad;
        } else {
            out.status = CheckOutcome::Status::Pass;
            out.detail = util::format("%zu points within %s",
                                      points.size(), bounds.c_str());
        }
        return out;
    }

    CheckOutcome
    evalMonotonic(const LoadedCheck &c, CheckOutcome out) const
    {
        const util::JsonValue &check = *c.check;
        const LoadedReport &report = reportFor(c, out.experiment);
        const std::string &column = requireString(c, check, "column");
        const std::string &orderBy = requireString(c, check, "order_by");
        const std::string direction =
            stringOr(check, "direction", "increasing");
        if (direction != "increasing" && direction != "decreasing") {
            setupFail(util::format("%s: bad direction '%s'",
                                   c.file.c_str(), direction.c_str()));
        }
        const double slack = numberOr(check, "slack_pct", 0.0) / 100.0;

        auto points = selectPoints(report, *check.find("select"));
        if (points.size() < 2) {
            out.status = CheckOutcome::Status::Fail;
            out.detail = util::format(
                "selection matched %zu points; monotonicity needs >= 2",
                points.size());
            return out;
        }
        std::vector<std::pair<double, const util::JsonValue *>> ordered;
        for (const auto *p : points) {
            double key = 0.0;
            if (!columnValue(*p, orderBy, key)) {
                out.status = CheckOutcome::Status::Fail;
                out.detail = util::format(
                    "point %s has no numeric order column '%s'",
                    describePoint(*p).c_str(), orderBy.c_str());
                return out;
            }
            ordered.emplace_back(key, p);
        }
        std::stable_sort(ordered.begin(), ordered.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });

        std::string bad;
        for (std::size_t i = 1; i < ordered.size(); ++i) {
            double prev = 0, cur = 0;
            if (!columnValue(*ordered[i - 1].second, column, prev) ||
                !columnValue(*ordered[i].second, column, cur)) {
                out.status = CheckOutcome::Status::Fail;
                out.detail = util::format("missing numeric column '%s'",
                                          column.c_str());
                return out;
            }
            const bool ok = direction == "increasing"
                                ? cur >= prev * (1.0 - slack)
                                : cur <= prev * (1.0 + slack);
            if (!ok) {
                bad += util::format(
                    "\n    %s then %s: %s goes %.4g -> %.4g (not %s, "
                    "slack %.3g%%)",
                    describePoint(*ordered[i - 1].second).c_str(),
                    describePoint(*ordered[i].second).c_str(),
                    column.c_str(), prev, cur, direction.c_str(),
                    slack * 100.0);
            }
        }
        if (!bad.empty()) {
            out.status = CheckOutcome::Status::Fail;
            out.detail = "monotonicity violated:" + bad;
        } else {
            out.status = CheckOutcome::Status::Pass;
            out.detail = util::format("%zu points %s in %s",
                                      ordered.size(), direction.c_str(),
                                      orderBy.c_str());
        }
        return out;
    }

    /** Aggregate one side of an `ordering` check. */
    double
    aggregate(const LoadedCheck &c, const util::JsonValue &side,
              std::string &desc, std::string &experimentOut) const
    {
        const std::string experiment =
            stringOr(side, "experiment", c.defaultExperiment);
        if (experiment.empty()) {
            setupFail(util::format("%s: ordering side needs an "
                                   "'experiment'", c.file.c_str()));
        }
        experimentOut = experiment;
        const LoadedReport &report = reportFor(c, experiment);
        const util::JsonValue *select = side.find("select");
        if (!select)
            setupFail(util::format("%s: ordering side needs 'select'",
                                   c.file.c_str()));
        const std::string &column = requireString(c, side, "column");
        const std::string agg = stringOr(side, "agg", "mean");

        auto points = selectPoints(report, *select);
        if (points.empty()) {
            setupFail(util::format(
                "%s: ordering selection over %s matched no points",
                c.file.c_str(), experiment.c_str()));
        }
        double sum = 0, lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        for (const auto *p : points) {
            double v = 0.0;
            if (!columnValue(*p, column, v)) {
                setupFail(util::format(
                    "%s: point %s has no numeric column '%s'",
                    c.file.c_str(), describePoint(*p).c_str(),
                    column.c_str()));
            }
            sum += v;
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        double value = 0.0;
        if (agg == "mean")
            value = sum / static_cast<double>(points.size());
        else if (agg == "min")
            value = lo;
        else if (agg == "max")
            value = hi;
        else
            setupFail(util::format("%s: unknown agg '%s'",
                                   c.file.c_str(), agg.c_str()));
        desc = util::format("%s(%s over %zu points of %s)", agg.c_str(),
                            column.c_str(), points.size(),
                            experiment.c_str());
        return value;
    }

    CheckOutcome
    evalOrdering(const LoadedCheck &c, CheckOutcome out) const
    {
        const util::JsonValue &check = *c.check;
        const util::JsonValue *a = check.find("a");
        const util::JsonValue *b = check.find("b");
        if (!a || !b)
            setupFail(util::format("%s: ordering check '%s' needs 'a' "
                                   "and 'b'", c.file.c_str(),
                                   out.rule.c_str()));
        const std::string cmp = stringOr(check, "cmp", ">=");
        if (cmp != ">=" && cmp != "<=")
            setupFail(util::format("%s: bad cmp '%s'", c.file.c_str(),
                                   cmp.c_str()));
        const double factor = numberOr(check, "factor", 1.0);

        std::string descA, descB, expA, expB;
        const double va = aggregate(c, *a, descA, expA);
        const double vb = aggregate(c, *b, descB, expB);
        out.experiment = expA == expB ? expA : expA + "," + expB;

        const double bound = factor * vb;
        const bool ok = cmp == ">=" ? va >= bound : va <= bound;
        out.status =
            ok ? CheckOutcome::Status::Pass : CheckOutcome::Status::Fail;
        out.detail = util::format(
            "%s = %.4g %s %.4g = %.4g x %s%s", descA.c_str(), va,
            cmp.c_str(), bound, factor, descB.c_str(),
            ok ? "" : " VIOLATED");
        return out;
    }

    CheckOutcome
    evalPlateau(const LoadedCheck &c, CheckOutcome out) const
    {
        const util::JsonValue &check = *c.check;
        const LoadedReport &report = reportFor(c, out.experiment);
        const std::string &column = requireString(c, check, "column");
        const double spreadPct = numberOr(check, "spread_pct", 10.0);

        auto points = selectPoints(report, *check.find("select"));
        if (points.size() < 2) {
            out.status = CheckOutcome::Status::Fail;
            out.detail = util::format(
                "selection matched %zu points; a plateau needs >= 2",
                points.size());
            return out;
        }
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        const util::JsonValue *pLo = nullptr, *pHi = nullptr;
        for (const auto *p : points) {
            double v = 0.0;
            if (!columnValue(*p, column, v)) {
                out.status = CheckOutcome::Status::Fail;
                out.detail = util::format(
                    "point %s has no numeric column '%s'",
                    describePoint(*p).c_str(), column.c_str());
                return out;
            }
            if (v < lo) {
                lo = v;
                pLo = p;
            }
            if (v > hi) {
                hi = v;
                pHi = p;
            }
        }
        const double spread = hi > 0 ? (hi - lo) / hi * 100.0 : 0.0;
        if (spread > spreadPct) {
            out.status = CheckOutcome::Status::Fail;
            out.detail = util::format(
                "spread %.3g%% > %.3g%%: low %s (%s=%.4g), high %s "
                "(%s=%.4g)",
                spread, spreadPct, describePoint(*pLo).c_str(),
                column.c_str(), lo, describePoint(*pHi).c_str(),
                column.c_str(), hi);
        } else {
            out.status = CheckOutcome::Status::Pass;
            out.detail = util::format("%zu points flat within %.3g%% "
                                      "(allowed %.3g%%)",
                                      points.size(), spread, spreadPct);
        }
        return out;
    }

    CheckOutcome
    evalSpread(const LoadedCheck &c, CheckOutcome out) const
    {
        const util::JsonValue &check = *c.check;
        const LoadedReport &report = reportFor(c, out.experiment);
        const std::string &lowCol = requireString(c, check, "column_lo");
        const std::string &highCol = requireString(c, check, "column_hi");
        const double minGap = numberOr(check, "min_gap", 0.0);
        const std::string mode = stringOr(check, "mode", "all");
        if (mode != "all" && mode != "any")
            setupFail(util::format("%s: bad spread mode '%s'",
                                   c.file.c_str(), mode.c_str()));

        auto points = selectPoints(report, *check.find("select"));
        if (points.empty()) {
            out.status = CheckOutcome::Status::Fail;
            out.detail = "selection matched no points";
            return out;
        }
        unsigned wide = 0;
        std::string bad;
        double best = 0.0;
        for (const auto *p : points) {
            double lo = 0, hi = 0;
            if (!columnValue(*p, lowCol, lo) ||
                !columnValue(*p, highCol, hi)) {
                out.status = CheckOutcome::Status::Fail;
                out.detail = util::format(
                    "point %s lacks numeric '%s'/'%s'",
                    describePoint(*p).c_str(), lowCol.c_str(),
                    highCol.c_str());
                return out;
            }
            const double gap = hi - lo;
            best = std::max(best, gap);
            if (gap >= minGap) {
                ++wide;
            } else if (mode == "all") {
                bad += util::format(
                    "\n    point %s: %s-%s gap %.4g < %.4g GB/s",
                    describePoint(*p).c_str(), highCol.c_str(),
                    lowCol.c_str(), gap, minGap);
            }
        }
        const bool ok = mode == "all" ? bad.empty() : wide > 0;
        if (!ok) {
            out.status = CheckOutcome::Status::Fail;
            out.detail =
                mode == "all"
                    ? ("placement spread too small:" + bad)
                    : util::format("no point reaches a %s-%s gap of "
                                   "%.4g GB/s (best %.4g)",
                                   highCol.c_str(), lowCol.c_str(),
                                   minGap, best);
        } else {
            out.status = CheckOutcome::Status::Pass;
            out.detail = util::format(
                "%u/%zu points spread >= %.4g GB/s (widest %.4g)", wide,
                points.size(), minGap, best);
        }
        return out;
    }

    CheckOutcome
    evaluate(const LoadedCheck &c) const
    {
        const util::JsonValue &check = *c.check;
        CheckOutcome out;
        out.rule = requireString(c, check, "rule");
        out.experiment =
            stringOr(check, "experiment", c.defaultExperiment);
        const std::string &kind = requireString(c, check, "kind");

        if (kind == "ordering")
            return evalOrdering(c, std::move(out));
        if (out.experiment.empty()) {
            setupFail(util::format("%s: check '%s' names no experiment",
                                   c.file.c_str(), out.rule.c_str()));
        }
        if (!check.find("select")) {
            setupFail(util::format("%s: check '%s' needs 'select'",
                                   c.file.c_str(), out.rule.c_str()));
        }
        if (kind == "band")
            return evalBand(c, std::move(out));
        if (kind == "monotonic")
            return evalMonotonic(c, std::move(out));
        if (kind == "plateau")
            return evalPlateau(c, std::move(out));
        if (kind == "spread")
            return evalSpread(c, std::move(out));
        setupFail(util::format("%s: check '%s' has unknown kind '%s'",
                               c.file.c_str(), out.rule.c_str(),
                               kind.c_str()));
    }

    /** Every experiment a check needs a report for. */
    std::set<std::string>
    referencedExperiments(const LoadedCheck &c) const
    {
        std::set<std::string> out;
        const util::JsonValue &check = *c.check;
        const std::string kind = stringOr(check, "kind", "");
        if (kind == "ordering") {
            for (const char *side : {"a", "b"}) {
                if (const auto *s = check.find(side)) {
                    std::string e =
                        stringOr(*s, "experiment", c.defaultExperiment);
                    if (!e.empty())
                        out.insert(e);
                }
            }
        } else {
            std::string e =
                stringOr(check, "experiment", c.defaultExperiment);
            if (!e.empty())
                out.insert(e);
        }
        return out;
    }
};

/** Parse one cellbw-paper-v1 file into checks. */
void
loadBaselineFile(const std::string &path,
                 std::vector<util::JsonValue> &docStore,
                 std::vector<LoadedCheck> &checks,
                 std::map<std::string, std::string> &baselineByExperiment)
{
    std::string text;
    if (!util::readFile(path, text))
        setupFail(util::format("cannot read baseline %s", path.c_str()));
    util::JsonValue doc;
    std::string err;
    if (!util::JsonValue::parse(text, doc, err)) {
        setupFail(util::format("malformed baseline %s: %s", path.c_str(),
                               err.c_str()));
    }
    const util::JsonValue *schema = doc.find("schema");
    if (!schema || !schema->isString() || schema->str() != kPaperSchema) {
        setupFail(util::format("%s: not a %s document", path.c_str(),
                               kPaperSchema));
    }
    std::string experiment;
    if (const auto *e = doc.find("experiment")) {
        if (!e->isString())
            setupFail(util::format("%s: 'experiment' must be a string",
                                   path.c_str()));
        experiment = e->str();
        baselineByExperiment[experiment] = path;
    }
    const util::JsonValue *list = doc.find("checks");
    if (!list || !list->isArray() || list->array().empty()) {
        setupFail(util::format("%s: needs a non-empty 'checks' array",
                               path.c_str()));
    }

    docStore.push_back(std::move(doc));
    for (const auto &c : docStore.back().find("checks")->array()) {
        if (!c.isObject())
            setupFail(util::format("%s: every check must be an object",
                                   path.c_str()));
        checks.push_back({path, experiment, &c});
    }
}

std::string
statusWord(CheckOutcome::Status s)
{
    switch (s) {
      case CheckOutcome::Status::Pass:
        return "PASS";
      case CheckOutcome::Status::Fail:
        return "FAIL";
      case CheckOutcome::Status::Skip:
        return "SKIP";
    }
    return "?";
}

std::string
renderValidateReport(const ValidateOutcome &outcome)
{
    JsonReport report;
    report.setBench("validate", "Validate",
                    "paper-fidelity validation of suite results");
    stats::Table table({"rule", "experiment", "status", "detail"});
    for (const auto &c : outcome.checks) {
        table.addRow({c.rule, c.experiment.empty() ? "-" : c.experiment,
                      statusWord(c.status), c.detail});
    }
    report.addTable("checks", table);
    return report.render();
}

} // namespace

int
runValidate(const ValidateSpec &spec, ValidateOutcome *outcome)
{
    namespace fs = std::filesystem;

    ValidateOutcome result;
    try {
        // 1. Load every expectation file in the baseline directory.
        std::vector<util::JsonValue> docStore;
        docStore.reserve(64);
        std::vector<LoadedCheck> checks;
        std::map<std::string, std::string> baselineByExperiment;
        {
            std::error_code ec;
            std::vector<std::string> files;
            for (const auto &entry :
                 fs::directory_iterator(spec.baselineDir, ec)) {
                if (entry.path().extension() == ".json")
                    files.push_back(entry.path().string());
            }
            if (ec) {
                setupFail(util::format(
                    "cannot read baseline directory %s: %s",
                    spec.baselineDir.c_str(), ec.message().c_str()));
            }
            std::sort(files.begin(), files.end());
            if (files.empty()) {
                setupFail(util::format("no paper baselines under %s",
                                       spec.baselineDir.c_str()));
            }
            if (docStore.capacity() < files.size())
                docStore.reserve(files.size());
            for (const auto &f : files) {
                loadBaselineFile(f, docStore, checks,
                                 baselineByExperiment);
            }
        }

        // 2. Resolve the experiment set to run.
        auto &registry = ExperimentRegistry::instance();
        std::set<std::string> targets;
        if (spec.targets.empty()) {
            for (const auto &kv : baselineByExperiment)
                targets.insert(kv.first);
        } else {
            for (const auto &name : spec.targets) {
                if (!registry.find(name)) {
                    setupFail(util::format(
                        "unknown experiment '%s' (see `cellbw list`)",
                        name.c_str()));
                }
                if (!baselineByExperiment.count(name)) {
                    setupFail(util::format(
                        "no paper baseline for experiment '%s' under "
                        "%s",
                        name.c_str(), spec.baselineDir.c_str()));
                }
                targets.insert(name);
            }
        }
        for (const auto &t : targets) {
            if (!registry.find(t)) {
                setupFail(util::format(
                    "%s names experiment '%s' which is not registered",
                    baselineByExperiment[t].c_str(), t.c_str()));
            }
        }

        // 3. Run them through the shared suite/cache path.
        std::error_code ec;
        fs::create_directories(spec.outDir, ec);
        if (ec) {
            setupFail(util::format("cannot create %s: %s",
                                   spec.outDir.c_str(),
                                   ec.message().c_str()));
        }
        const std::string manifestPath = spec.outDir + "/validate.manifest";
        {
            std::string manifest =
                "# generated by `cellbw validate`; selected experiments\n";
            for (const auto &t : targets)
                manifest += t + "\n";
            if (!util::writeFileAtomic(manifestPath, manifest))
                setupFail("cannot write " + manifestPath);
        }
        SuiteSpec suite;
        suite.manifest = manifestPath;
        suite.outDir = spec.outDir;
        suite.cacheDir = spec.cacheDir;
        suite.useCache = spec.useCache;
        suite.jobs = spec.jobs;
        suite.forward = spec.forward;
        suite.terse = spec.terse;
        if (runSuite(suite) != 0)
            setupFail("experiment suite failed; cannot validate");

        // 4. Parse the fresh reports and derive each one's oracle.
        std::map<std::string, LoadedReport> reports;
        for (const auto &t : targets) {
            const std::string path = spec.outDir + "/" + t + ".json";
            std::string text;
            if (!util::readFile(path, text))
                setupFail("cannot read report " + path);
            LoadedReport r;
            std::string err;
            if (!util::JsonValue::parse(text, r.doc, err)) {
                setupFail(util::format("malformed report %s: %s",
                                       path.c_str(), err.c_str()));
            }
            const util::JsonValue *points = r.doc.find("points");
            if (!points || !points->isArray())
                setupFail(path + ": report has no points array");
            for (const auto &p : points->array()) {
                if (p.isObject())
                    r.points.push_back(&p);
            }
            const util::JsonValue *config = r.doc.find("config");
            if (!config ||
                !Oracle::fromReportConfig(*config, r.oracle, err)) {
                setupFail(util::format("%s: cannot derive oracle: %s",
                                       path.c_str(), err.c_str()));
            }
            reports.emplace(t, std::move(r));
        }

        // 5. Evaluate every check; cross-experiment checks that
        // reference experiments outside this run are skipped, not
        // failed (running a subset must stay useful).
        Evaluator ev{reports};
        for (const auto &c : checks) {
            bool runnable = true;
            std::string missing;
            for (const auto &e : ev.referencedExperiments(c)) {
                if (!reports.count(e)) {
                    runnable = false;
                    missing = e;
                }
            }
            if (!runnable) {
                CheckOutcome out;
                out.rule = stringOr(*c.check, "rule", "?");
                out.experiment = missing;
                out.status = CheckOutcome::Status::Skip;
                out.detail = util::format(
                    "experiment %s not part of this run",
                    missing.c_str());
                result.checks.push_back(std::move(out));
                continue;
            }
            result.checks.push_back(ev.evaluate(c));
        }
    } catch (const SetupError &e) {
        std::fprintf(stderr, "cellbw validate: %s\n", e.message.c_str());
        return 2;
    }

    for (const auto &c : result.checks) {
        switch (c.status) {
          case CheckOutcome::Status::Pass:
            ++result.passed;
            break;
          case CheckOutcome::Status::Fail:
            ++result.failed;
            break;
          case CheckOutcome::Status::Skip:
            ++result.skipped;
            break;
        }
    }

    // 6. Report: one line per check, details on failures.
    std::printf("\npaper checks:\n");
    for (const auto &c : result.checks) {
        std::printf("  %-4s  %-34s [%s]\n",
                    statusWord(c.status).c_str(), c.rule.c_str(),
                    c.experiment.empty() ? "-" : c.experiment.c_str());
        if (c.status == CheckOutcome::Status::Fail)
            std::printf("        %s\n", c.detail.c_str());
    }
    std::printf("validate: %u passed, %u failed, %u skipped (%zu "
                "checks)\n",
                result.passed, result.failed, result.skipped,
                result.checks.size());

    const std::string reportJson = renderValidateReport(result) + "\n";
    const std::string reportPath = spec.outDir + "/validate.json";
    if (!util::writeFileAtomic(reportPath, reportJson)) {
        std::fprintf(stderr, "cellbw validate: cannot write %s\n",
                     reportPath.c_str());
        return 2;
    }
    if (!spec.jsonPath.empty() &&
        !util::writeFileAtomic(spec.jsonPath, reportJson)) {
        std::fprintf(stderr, "cellbw validate: cannot write %s\n",
                     spec.jsonPath.c_str());
        return 2;
    }

    if (outcome)
        *outcome = result;
    return result.ok() ? 0 : 1;
}

} // namespace cellbw::core
