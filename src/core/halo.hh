/**
 * @file
 * QCD-style halo-exchange stencil over an N-chip lattice decomposition
 * (ROADMAP item 3's "real application kernel").
 *
 * The lattice is a 1-D ring of ranks, each owning a slab resident in
 * its home chip's XDR bank (mem::NumaPolicy::onBank).  Every step a
 * rank GETs a halo from each ring neighbour — crossing the on-blade
 * IOIF or an inter-blade link when the neighbour lives on another chip
 * — and overlaps that exchange with a double-buffered interior update
 * sweep (GET chunk, compute, PUT chunk), finishing with the boundary
 * compute + PUT once the halos land.  Work placement follows
 * cell::TaskPlacement: Locality pins each rank to an SPE of its home
 * chip so only the halos cross links; RoundRobin scatters ranks over
 * the chips so the whole interior stream rides the 7 GB/s links — the
 * paper conclusion's cross-chip warning, measured at cluster scale.
 *
 * Steps proceed without a global barrier: the exchange is a bandwidth
 * workload, so a rank may run ahead of its neighbours (the bytes moved
 * are identical either way).
 */

#ifndef CELLBW_CORE_HALO_HH
#define CELLBW_CORE_HALO_HH

#include <cstdint>

#include "cell/cell_system.hh"

namespace cellbw::core
{

struct HaloConfig
{
    /** Lattice ranks per chip (1..8); ranks = numChips * ranksPerChip. */
    unsigned ranksPerChip = 2;

    /** Bytes of lattice slab owned by each rank. */
    std::uint64_t slabBytes = 256 * util::KiB;

    /** Halo exchanged with each ring neighbour per step. */
    std::uint32_t haloBytes = 4 * util::KiB;

    /** Stencil steps; 0 derives max(1, bytesPerSpe / slabBytes). */
    unsigned steps = 0;

    /** Sizing knob for the derived step count (--bytes-per-spe). */
    std::uint64_t bytesPerSpe = 4 * util::MiB;

    /** Interior DMA chunk; 16 KiB is the architecture's sweet spot. */
    std::uint32_t chunkBytes = 16 * util::KiB;

    /** Modeled SPU update cost, cycles per KiB touched. */
    Tick computeCyclesPerKiB = 64;

    /** Rank-to-chip placement policy. */
    cell::TaskPlacement placement = cell::TaskPlacement::RoundRobin;
};

struct HaloResult
{
    /** Sustained aggregate DMA rate, GB/s (all bytes below). */
    double gbps = 0;

    /** Halo-exchange GETs alone, GB/s. */
    double haloGbps = 0;

    /** Bytes pulled from neighbour slabs (2 x halo per rank-step). */
    std::uint64_t haloBytes = 0;

    /** Interior sweep + boundary write-back bytes. */
    std::uint64_t bulkBytes = 0;

    /** Simulated seconds the exchange took. */
    double seconds = 0;

    /** Ranks and steps actually run (after the 0 = auto derivation). */
    unsigned ranks = 0;
    unsigned steps = 0;
};

/**
 * Run the stencil on @p sys.  Requires every SPE slot active
 * (numSpes == 8 * numChips) under linear affinity, so rank placement
 * is an exact chip choice rather than a kernel roll of the dice.
 */
HaloResult runClusterHalo(cell::CellSystem &sys, const HaloConfig &cfg);

} // namespace cellbw::core

#endif // CELLBW_CORE_HALO_HH
