#include "core/oracle.hh"

#include <algorithm>
#include <cstdlib>

#include "eib/topology.hh"
#include "stats/json_writer.hh"
#include "util/json.hh"
#include "util/strings.hh"

namespace cellbw::core
{

Oracle::Oracle(const cell::CellConfig &cfg)
{
    const double cpuHz = cfg.clock.cpuHz;
    const double busHz = cpuHz / cfg.clock.busPeriodTicks;

    ramp_ = cfg.eib.bytesPerBusCycle * busHz / 1e9;
    ls_ = cfg.spe.ls.bytesPerCycle * cpuHz / 1e9;
    // The PPU moves at most one 128-bit VMX access through its
    // load/store port per two cycles: a 16 B/cycle width bound.
    l1_ = 16.0 * cpuHz / 1e9;
    pair_ = 2.0 * ramp_;
    // Segment reservation grants two concurrent <=half-ring transfers
    // per ring; at the nominal 3.2 GHz this is the quoted 204.8 GB/s.
    eib_ = cfg.eib.numRings * 2.0 * cfg.eib.bytesPerBusCycle * busHz / 1e9;
    bank0_ = cfg.memory.bank0.bytesPerTick * cpuHz / 1e9;
    bank1_ = cfg.memory.bank1.bytesPerTick * cpuHz / 1e9;
    // Every chip past the first contributes a bank1-rated XDR bank;
    // single-chip runs still see the paper blade's two banks.
    const unsigned banks = std::max(cfg.numChips, 2u);
    mem_ = bank0_ + (banks - 1) * bank1_;
    io_ = cfg.memory.ioLink.bytesPerTick * cpuHz / 1e9;
    micIoif_ = ramp_ + io_;
    bladeLink_ = cfg.memory.bladeLink.bytesPerTick * cpuHz / 1e9;
    // Bisection: links crossing the chips/2 cut of the cluster shape.
    const auto shape = eib::ClusterShape::of(banks, cfg.numBlades);
    const unsigned cut = banks / 2;
    bisection_ = 0;
    shape.forEachLink([&](unsigned lo, unsigned hi, bool interBlade) {
        if (lo < cut && hi >= cut)
            bisection_ += interBlade ? bladeLink_ : io_;
    });
    busHz_ = busHz;
    elemOverheadBus_ = static_cast<unsigned>(cfg.spe.mfc.elemOverheadBus);
    listElemOverheadBus_ =
        static_cast<unsigned>(cfg.spe.mfc.listElemOverheadBus);
}

double
Oracle::gatherElemPeak(std::uint32_t elemBytes) const
{
    if (elemOverheadBus_ == 0)
        return ramp_;
    double gbps = elemBytes * busHz_ / elemOverheadBus_ / 1e9;
    return std::min(gbps, ramp_);
}

double
Oracle::gatherListPeak(std::uint32_t elemBytes) const
{
    if (listElemOverheadBus_ == 0)
        return ramp_;
    double gbps = elemBytes * busHz_ / listElemOverheadBus_ / 1e9;
    return std::min(gbps, ramp_);
}

bool
Oracle::peak(const std::string &name, double &out) const
{
    for (const auto &kv : table()) {
        if (kv.first == name) {
            out = kv.second;
            return true;
        }
    }
    auto colon = name.find(':');
    if (colon != std::string::npos) {
        const std::string kind = name.substr(0, colon);
        char *end = nullptr;
        const char *num = name.c_str() + colon + 1;
        unsigned long n = std::strtoul(num, &end, 10);
        if (end != num && *end == '\0' && n > 0) {
            if (kind == "couples" || kind == "cycle") {
                out = topologyPeak(static_cast<unsigned>(n));
                return true;
            }
            if (kind == "gather-elem") {
                out = gatherElemPeak(static_cast<std::uint32_t>(n));
                return true;
            }
            if (kind == "gather-list") {
                out = gatherListPeak(static_cast<std::uint32_t>(n));
                return true;
            }
        }
    }
    return false;
}

std::vector<std::pair<std::string, double>>
Oracle::table() const
{
    return {
        {"ramp", ramp_}, {"xdr", ramp_},   {"ls", ls_},
        {"l1", l1_},     {"l2", l1_},      {"pair", pair_},
        {"eib", eib_},   {"mem", mem_},    {"bank0", bank0_},
        {"bank1", bank1_}, {"io", io_},    {"mic+ioif", micIoif_},
        {"blade-link", bladeLink_}, {"bisection", bisection_},
    };
}

bool
Oracle::fromReportConfig(const util::JsonValue &config, Oracle &out,
                         std::string &err)
{
    if (!config.isObject()) {
        err = "report config is not an object";
        return false;
    }

    util::Options opts("oracle", "rebuilt from a report config");
    cell::CellConfig::registerOptions(opts);
    std::vector<std::string> known;
    for (const auto &o : opts.list())
        known.push_back(o.name);

    std::vector<std::string> args;
    args.push_back("oracle");
    for (const auto &m : config.object()) {
        bool registered = false;
        for (const auto &k : known)
            registered = registered || k == m.first;
        if (!registered)
            continue;   // --runs/--seed/--quick/... are not machine knobs
        std::string text;
        switch (m.second.kind()) {
          case util::JsonValue::Kind::Number:
            text = stats::JsonWriter::number(m.second.number());
            break;
          case util::JsonValue::Kind::Bool:
            text = m.second.boolean() ? "true" : "false";
            break;
          case util::JsonValue::Kind::String:
            text = m.second.str();
            break;
          default:
            err = util::format("config option '%s' has a non-scalar "
                               "value", m.first.c_str());
            return false;
        }
        args.push_back("--" + m.first + "=" + text);
    }

    std::vector<const char *> argv;
    for (const auto &a : args)
        argv.push_back(a.c_str());
    if (!opts.parse(static_cast<int>(argv.size()), argv.data())) {
        err = "report config failed option validation";
        return false;
    }
    out = Oracle(cell::CellConfig::fromOptions(opts));
    return true;
}

} // namespace cellbw::core
