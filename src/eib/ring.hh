/**
 * @file
 * One unidirectional EIB data ring.
 *
 * Each of the four rings moves 16 bytes per bus cycle.  A transfer
 * occupies every ring segment along its path for the duration of the
 * packet, so two transfers can share a ring concurrently if and only if
 * their paths are segment-disjoint — the property behind the paper's
 * couples vs. cycle results.
 */

#ifndef CELLBW_EIB_RING_HH
#define CELLBW_EIB_RING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "eib/topology.hh"
#include "util/types.hh"

namespace cellbw::stats
{
class MetricsRegistry;
}

namespace cellbw::eib
{

enum class RingDir { Clockwise, CounterClockwise };

class Ring
{
  public:
    Ring(unsigned index, RingDir dir);

    unsigned index() const { return index_; }
    RingDir direction() const { return dir_; }

    /** Hop count from src to dst along this ring's direction. */
    unsigned hops(RampPos src, RampPos dst) const;

    /**
     * Earliest tick >= @p from at which a packet injected at src can
     * stream along the src->dst path.  The packet's wavefront reaches
     * the k-th segment of its path @p hopLat * k ticks after injection,
     * so each segment constrains the start staggered by its distance.
     */
    Tick earliestStart(RampPos src, RampPos dst, Tick from,
                       Tick hopLat) const;

    /**
     * Reserve the path for a packet injected at @p start occupying each
     * segment for @p dur ticks, staggered by @p hopLat per hop.  Two
     * packets of the same flow can follow back-to-back at full rate;
     * crossing flows contend for the shared segments.
     */
    void reserve(RampPos src, RampPos dst, Tick start, Tick dur,
                 Tick hopLat);

    std::uint64_t grants() const { return grants_; }
    Tick busyTicks() const { return busyTicks_; }

    /**
     * Accumulate this ring's utilization counters into @p reg under
     * `<prefix>.grants` / `<prefix>.busy_ticks` (grant count and the
     * summed segment-occupancy duration behind it).
     */
    void registerMetrics(stats::MetricsRegistry &reg,
                         const std::string &prefix) const;

  private:
    /**
     * Visit (segment index, hop order) pairs along the path, in the
     * order the packet wavefront traverses them.  Segment i is the arc
     * between positions i and i+1 (mod 12); a CW transfer src->dst uses
     * segments src .. dst-1 in that order, a CCW one uses segments
     * src-1 down to dst.
     */
    template <typename Fn>
    void
    forEachSegment(RampPos src, RampPos dst, Fn &&fn) const
    {
        unsigned n = hops(src, dst);
        for (unsigned k = 0; k < n; ++k) {
            unsigned seg = (dir_ == RingDir::Clockwise)
                               ? (src + k) % numRamps
                               : (src + numRamps - 1 - k) % numRamps;
            fn(seg, k);
        }
    }

    unsigned index_;
    RingDir dir_;
    std::vector<Tick> segFreeAt_;
    std::uint64_t grants_ = 0;
    Tick busyTicks_ = 0;
};

} // namespace cellbw::eib

#endif // CELLBW_EIB_RING_HH
