#include "eib/ring.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "stats/metrics.hh"

namespace cellbw::eib
{

Ring::Ring(unsigned index, RingDir dir)
    : index_(index), dir_(dir), segFreeAt_(numRamps, 0)
{
}

unsigned
Ring::hops(RampPos src, RampPos dst) const
{
    return dir_ == RingDir::Clockwise ? cwHops(src, dst)
                                      : ccwHops(src, dst);
}

Tick
Ring::earliestStart(RampPos src, RampPos dst, Tick from,
                    Tick hopLat) const
{
    Tick start = from;
    forEachSegment(src, dst, [&](unsigned seg, unsigned k) {
        Tick offset = hopLat * k;
        Tick free_at = segFreeAt_[seg];
        // The wavefront hits segment k at start + offset.
        start = std::max(start,
                         free_at > offset ? free_at - offset : Tick(0));
    });
    return start;
}

void
Ring::reserve(RampPos src, RampPos dst, Tick start, Tick dur, Tick hopLat)
{
    unsigned n = hops(src, dst);
    if (n == 0 || n > numRamps / 2)
        sim::panic("ring %u: illegal %u-hop reservation", index_, n);
    forEachSegment(src, dst, [&](unsigned seg, unsigned k) {
        segFreeAt_[seg] =
            std::max(segFreeAt_[seg], start + hopLat * k + dur);
    });
    ++grants_;
    busyTicks_ += dur;
}

void
Ring::registerMetrics(stats::MetricsRegistry &reg,
                      const std::string &prefix) const
{
    reg.counter(prefix + ".grants").add(grants_);
    reg.counter(prefix + ".busy_ticks").add(busyTicks_);
}

} // namespace cellbw::eib
