/**
 * @file
 * Element Interconnect Bus data arbiter.
 *
 * The EIB has four data rings (two per direction) plus a tree-structured
 * command bus.  The data arbiter grants a packet to a ring whose
 * direction matches the packet's shorter path (never more than halfway
 * around) and whose path segments are free; each ramp can drive one
 * outgoing and accept one incoming 16 B flit per bus cycle.
 *
 * Transfers are reserved greedily at request time: the packet gets the
 * ring that lets it start earliest, subject to its source TX port,
 * destination RX port, and path-segment availability.  This keeps the
 * model O(path length) per packet while reproducing the conflict
 * behaviour the paper measures (couples vs. cycles, placement spread).
 */

#ifndef CELLBW_EIB_EIB_HH
#define CELLBW_EIB_EIB_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "eib/ring.hh"
#include "sim/clock.hh"
#include "sim/sim_object.hh"
#include "trace/recorder.hh"

namespace cellbw::eib
{

struct EibParams
{
    /** Data rings, split evenly between the two directions. */
    unsigned numRings = 4;

    /** Command-phase latency before data arbitration, bus cycles. */
    Tick cmdLatencyBus = 20;

    /** Per-segment data latency, bus cycles. */
    Tick hopLatencyBus = 1;

    /** Ring width: bytes moved per bus cycle. */
    unsigned bytesPerBusCycle = 16;

    /**
     * Pin each (src, dst) flow to one ring of its direction instead of
     * load-balancing per packet.  The real data arbiter keeps a
     * transfer's packets on the ring it was granted, so concurrent
     * flows whose paths overlap *and* hash to the same ring serialize —
     * the loss the paper measures with 4 couples / 8-SPE cycles.
     */
    bool flowPinning = true;
};

class Eib : public sim::SimObject
{
  public:
    Eib(std::string name, sim::EventQueue &eq, const sim::ClockSpec &clock,
        const EibParams &params);

    /** Attach an event recorder; @p chip labels this bus's records. */
    void
    setRecorder(trace::Recorder *recorder, unsigned chip)
    {
        recorder_ = recorder;
        chip_ = chip;
    }

    /**
     * Move a data packet of @p bytes (<= 128 in normal operation) from
     * ramp @p src to ramp @p dst.  @p onDone fires when the packet's
     * tail arrives at the destination ramp.  The callable is scheduled
     * directly on the event queue (inline storage for small captures).
     */
    template <typename F>
    void
    transfer(RampPos src, RampPos dst, std::uint32_t bytes, F &&onDone)
    {
        const Tick arrival = reserveTransfer(src, dst, bytes);
        sim::TagScope tag(eventQueue(), sim::EventTag::Eib);
        eventQueue().scheduleAt(arrival, std::forward<F>(onDone));
    }

    /**
     * Arbitrate and reserve ring/ramp time for a packet; returns the
     * tick its tail arrives at @p dst.  transfer() is this plus the
     * completion event.
     */
    Tick reserveTransfer(RampPos src, RampPos dst, std::uint32_t bytes);

    /** @name Introspection for tests and the bench reports. */
    /** @{ */
    unsigned numRings() const { return static_cast<unsigned>(rings_.size()); }
    const Ring &ring(unsigned i) const { return *rings_[i]; }
    std::uint64_t bytesMoved() const { return bytesMoved_; }
    std::uint64_t packets() const { return packets_; }
    /** Sum over packets of (grant tick - earliest possible tick). */
    Tick contentionTicks() const { return contentionTicks_; }
    /** Peak data bandwidth of one ramp direction, GB/s. */
    double rampPeakGBps() const;
    /** @} */

    /**
     * Accumulate this bus's utilization counters (packets, bytes,
     * contention) and each ring's grants/occupancy into @p reg under
     * `<prefix>.*` / `<prefix>.ring<i>.*`.
     */
    void registerMetrics(stats::MetricsRegistry &reg,
                         const std::string &prefix) const;

  private:
    sim::ClockSpec clock_;
    EibParams params_;
    std::vector<std::unique_ptr<Ring>> rings_;
    std::array<Tick, numRamps> txFreeAt_{};
    std::array<Tick, numRamps> rxFreeAt_{};
    trace::Recorder *recorder_ = nullptr;
    unsigned chip_ = 0;
    std::uint64_t bytesMoved_ = 0;
    std::uint64_t packets_ = 0;
    Tick contentionTicks_ = 0;
    unsigned rrCounter_ = 0;
};

} // namespace cellbw::eib

#endif // CELLBW_EIB_EIB_HH
