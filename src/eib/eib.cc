#include "eib/eib.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "stats/metrics.hh"
#include "util/align.hh"
#include "util/strings.hh"

namespace cellbw::eib
{

Eib::Eib(std::string name, sim::EventQueue &eq, const sim::ClockSpec &clock,
         const EibParams &params)
    : sim::SimObject(std::move(name), eq), clock_(clock), params_(params)
{
    if (params_.numRings == 0)
        sim::fatal("EIB needs at least one data ring");
    for (unsigned i = 0; i < params_.numRings; ++i) {
        // Even indices run clockwise, odd counter-clockwise, so any ring
        // count >= 2 has both directions available.
        RingDir dir = (i % 2 == 0) ? RingDir::Clockwise
                                   : RingDir::CounterClockwise;
        rings_.push_back(std::make_unique<Ring>(i, dir));
    }
}

double
Eib::rampPeakGBps() const
{
    double bus_hz = clock_.cpuHz / clock_.busPeriodTicks;
    return params_.bytesPerBusCycle * bus_hz / 1e9;
}

Tick
Eib::reserveTransfer(RampPos src, RampPos dst, std::uint32_t bytes)
{
    if (src >= numRamps || dst >= numRamps)
        sim::panic("EIB transfer with bad ramp (%u -> %u)", src, dst);
    if (src == dst)
        sim::panic("EIB transfer to self at ramp %u", src);
    if (bytes == 0)
        sim::panic("EIB transfer of zero bytes");

    unsigned cw = cwHops(src, dst);
    unsigned ccw = ccwHops(src, dst);
    unsigned best_hops = std::min(cw, ccw);

    Tick occ = clock_.busCycles(
        util::divCeil(bytes, params_.bytesPerBusCycle));
    Tick ready = curTick() + clock_.busCycles(params_.cmdLatencyBus);

    Tick hop_lat = clock_.busCycles(params_.hopLatencyBus);
    Ring *best = nullptr;
    Tick best_start = maxTick;
    unsigned n = static_cast<unsigned>(rings_.size());

    if (params_.flowPinning) {
        // Deterministic ring per flow: count the legal rings and hash
        // the (src, dst) pair onto one of them.
        unsigned legal = 0;
        for (unsigned k = 0; k < n; ++k) {
            unsigned dir_hops =
                (rings_[k]->direction() == RingDir::Clockwise) ? cw
                                                               : ccw;
            if (dir_hops == best_hops)
                ++legal;
        }
        unsigned pick = (src * 7 + dst * 3) % legal;
        for (unsigned k = 0; k < n; ++k) {
            Ring *r = rings_[k].get();
            unsigned dir_hops =
                (r->direction() == RingDir::Clockwise) ? cw : ccw;
            if (dir_hops != best_hops)
                continue;
            if (pick-- == 0) {
                best = r;
                best_start = std::max(
                    {r->earliestStart(src, dst, ready, hop_lat),
                     txFreeAt_[src], rxFreeAt_[dst]});
                break;
            }
        }
    } else {
        // Per-packet choice: the ring that can start earliest, rotating
        // preference among ties for fairness.
        for (unsigned k = 0; k < n; ++k) {
            Ring *r = rings_[(k + rrCounter_) % n].get();
            unsigned dir_hops =
                (r->direction() == RingDir::Clockwise) ? cw : ccw;
            // Only the shorter direction is legal (both on a tie).
            if (dir_hops != best_hops)
                continue;
            Tick start = r->earliestStart(src, dst, ready, hop_lat);
            start = std::max({start, txFreeAt_[src], rxFreeAt_[dst]});
            if (start < best_start) {
                best_start = start;
                best = r;
            }
        }
        ++rrCounter_;
    }
    if (!best)
        sim::panic("no legal ring for %s -> %s", rampName(src),
                   rampName(dst));

    best->reserve(src, dst, best_start, occ, hop_lat);
    txFreeAt_[src] = best_start + occ;
    rxFreeAt_[dst] = best_start + occ;
    contentionTicks_ += best_start - ready;
    bytesMoved_ += bytes;
    ++packets_;

    Tick arrival = best_start + occ +
                   clock_.busCycles(params_.hopLatencyBus) * best_hops;
    if (recorder_) {
        recorder_->eib({curTick(), best_start, arrival, chip_,
                        best->index(), src, dst, bytes});
    }
    return arrival;
}

void
Eib::registerMetrics(stats::MetricsRegistry &reg,
                     const std::string &prefix) const
{
    reg.counter(prefix + ".packets").add(packets_);
    reg.counter(prefix + ".bytes_moved").add(bytesMoved_);
    reg.counter(prefix + ".contention_ticks").add(contentionTicks_);
    for (unsigned i = 0; i < rings_.size(); ++i)
        rings_[i]->registerMetrics(reg,
                                   prefix + util::format(".ring%u", i));
}

} // namespace cellbw::eib
