/**
 * @file
 * Physical layout of the Element Interconnect Bus.
 *
 * Twelve ramps sit on the ring in die order.  Following Krolak's EIB
 * description (MPR Fall Processor Forum 2005) and Chen et al., the
 * physical order interleaves the SPEs on the two sides of the die:
 *
 *   0:PPE 1:SPE1 2:SPE3 3:SPE5 4:SPE7 5:IOIF1
 *   6:IOIF0 7:SPE6 8:SPE4 9:SPE2 10:SPE0 11:MIC
 *
 * The paper's central observation is that the *logical* SPE numbering
 * the programmer sees is an arbitrary permutation of these physical
 * positions, and that transfer paths therefore conflict unpredictably.
 */

#ifndef CELLBW_EIB_TOPOLOGY_HH
#define CELLBW_EIB_TOPOLOGY_HH

#include <array>

#include "sim/logging.hh"

namespace cellbw::eib
{

/** Index of a ramp's physical position on the ring, 0..11. */
using RampPos = unsigned;

constexpr unsigned numRamps = 12;
constexpr unsigned numPhysicalSpes = 8;

constexpr RampPos ppeRamp = 0;
constexpr RampPos ioif1Ramp = 5;
constexpr RampPos ioif0Ramp = 6;
constexpr RampPos micRamp = 11;

/** Physical SPE number (0-7) to ramp position. */
constexpr std::array<RampPos, numPhysicalSpes> speRampTable = {
    10, // SPE0
    1,  // SPE1
    9,  // SPE2
    2,  // SPE3
    8,  // SPE4
    3,  // SPE5
    7,  // SPE6
    4,  // SPE7
};

constexpr RampPos
speRamp(unsigned physSpe)
{
    return speRampTable[physSpe];
}

constexpr bool
isSpeRamp(RampPos pos)
{
    return pos != ppeRamp && pos != ioif0Ramp && pos != ioif1Ramp &&
           pos != micRamp;
}

inline const char *
rampName(RampPos pos)
{
    static const char *names[numRamps] = {
        "PPE",  "SPE1", "SPE3", "SPE5", "SPE7",  "IOIF1",
        "IOIF0", "SPE6", "SPE4", "SPE2", "SPE0", "MIC",
    };
    if (pos >= numRamps)
        sim::panic("bad ramp position %u", pos);
    return names[pos];
}

/** Hops travelling clockwise (increasing position) from src to dst. */
constexpr unsigned
cwHops(RampPos src, RampPos dst)
{
    return (dst + numRamps - src) % numRamps;
}

/** Hops travelling counter-clockwise from src to dst. */
constexpr unsigned
ccwHops(RampPos src, RampPos dst)
{
    return (src + numRamps - dst) % numRamps;
}

/**
 * Hops along the shorter direction; the EIB never routes a transfer
 * more than halfway around the ring.
 */
constexpr unsigned
shortestHops(RampPos src, RampPos dst)
{
    unsigned cw = cwHops(src, dst);
    unsigned ccw = ccwHops(src, dst);
    return cw < ccw ? cw : ccw;
}

} // namespace cellbw::eib

#endif // CELLBW_EIB_TOPOLOGY_HH
