/**
 * @file
 * Physical layout of the Element Interconnect Bus.
 *
 * Twelve ramps sit on the ring in die order.  Following Krolak's EIB
 * description (MPR Fall Processor Forum 2005) and Chen et al., the
 * physical order interleaves the SPEs on the two sides of the die:
 *
 *   0:PPE 1:SPE1 2:SPE3 3:SPE5 4:SPE7 5:IOIF1
 *   6:IOIF0 7:SPE6 8:SPE4 9:SPE2 10:SPE0 11:MIC
 *
 * The paper's central observation is that the *logical* SPE numbering
 * the programmer sees is an arbitrary permutation of these physical
 * positions, and that transfer paths therefore conflict unpredictably.
 */

#ifndef CELLBW_EIB_TOPOLOGY_HH
#define CELLBW_EIB_TOPOLOGY_HH

#include <array>

#include "sim/logging.hh"

namespace cellbw::eib
{

/** Index of a ramp's physical position on the ring, 0..11. */
using RampPos = unsigned;

constexpr unsigned numRamps = 12;
constexpr unsigned numPhysicalSpes = 8;

constexpr RampPos ppeRamp = 0;
constexpr RampPos ioif1Ramp = 5;
constexpr RampPos ioif0Ramp = 6;
constexpr RampPos micRamp = 11;

/** Physical SPE number (0-7) to ramp position. */
constexpr std::array<RampPos, numPhysicalSpes> speRampTable = {
    10, // SPE0
    1,  // SPE1
    9,  // SPE2
    2,  // SPE3
    8,  // SPE4
    3,  // SPE5
    7,  // SPE6
    4,  // SPE7
};

constexpr RampPos
speRamp(unsigned physSpe)
{
    return speRampTable[physSpe];
}

constexpr bool
isSpeRamp(RampPos pos)
{
    return pos != ppeRamp && pos != ioif0Ramp && pos != ioif1Ramp &&
           pos != micRamp;
}

inline const char *
rampName(RampPos pos)
{
    static const char *names[numRamps] = {
        "PPE",  "SPE1", "SPE3", "SPE5", "SPE7",  "IOIF1",
        "IOIF0", "SPE6", "SPE4", "SPE2", "SPE0", "MIC",
    };
    if (pos >= numRamps)
        sim::panic("bad ramp position %u", pos);
    return names[pos];
}

/** Hops travelling clockwise (increasing position) from src to dst. */
constexpr unsigned
cwHops(RampPos src, RampPos dst)
{
    return (dst + numRamps - src) % numRamps;
}

/** Hops travelling counter-clockwise from src to dst. */
constexpr unsigned
ccwHops(RampPos src, RampPos dst)
{
    return (src + numRamps - dst) % numRamps;
}

/**
 * Hops along the shorter direction; the EIB never routes a transfer
 * more than halfway around the ring.
 */
constexpr unsigned
shortestHops(RampPos src, RampPos dst)
{
    unsigned cw = cwHops(src, dst);
    unsigned ccw = ccwHops(src, dst);
    return cw < ccw ? cw : ccw;
}

/**
 * Shape of an N-chip cluster: chips grouped onto blades of at most two
 * chips each.  The two chips of a blade talk over the blade's IOIF/BIF
 * link; blades talk over inter-blade links that terminate at each
 * blade's first chip (its *gateway*), so a cross-blade path is at most
 * three link hops: chip -> own gateway -> far gateway -> chip.
 *
 * The shape is pure arithmetic shared by the link graph
 * (mem::LinkGraph), the config validator, and the analytic oracle's
 * bisection-bandwidth peak, so all three agree on which links exist.
 */
struct ClusterShape
{
    unsigned chips = 1;
    unsigned blades = 1;

    /** Default blade count: two chips per blade, rounded up. */
    static constexpr unsigned
    autoBlades(unsigned chips)
    {
        return (chips + 1) / 2;
    }

    /** Resolve a --blades flag (0 = auto) against a chip count. */
    static constexpr ClusterShape
    of(unsigned chips, unsigned blades = 0)
    {
        return {chips, blades ? blades : autoBlades(chips)};
    }

    constexpr unsigned
    chipsPerBlade() const
    {
        return (chips + blades - 1) / blades;
    }

    constexpr unsigned
    bladeOf(unsigned chip) const
    {
        return chip / chipsPerBlade();
    }

    /** The blade's first chip, where its inter-blade links terminate. */
    constexpr unsigned
    gatewayOf(unsigned blade) const
    {
        return blade * chipsPerBlade();
    }

    /**
     * A shape is valid when every blade holds one or two chips and no
     * blade is empty.
     */
    constexpr bool
    valid() const
    {
        return chips >= 1 && blades >= 1 && blades <= chips &&
               chipsPerBlade() <= 2 &&
               gatewayOf(blades - 1) < chips;
    }

    /**
     * Enumerate every link in deterministic order: the on-blade IOIF
     * links in blade order, then the inter-blade links in (a, b)
     * lexicographic order.  @p fn is called as fn(lo, hi, interBlade)
     * with lo < hi the endpoint chips.
     */
    template <typename F>
    constexpr void
    forEachLink(F &&fn) const
    {
        for (unsigned b = 0; b < blades; ++b) {
            unsigned lo = gatewayOf(b);
            if (lo + 1 < chips && bladeOf(lo + 1) == b)
                fn(lo, lo + 1, false);
        }
        for (unsigned a = 0; a < blades; ++a)
            for (unsigned b = a + 1; b < blades; ++b)
                fn(gatewayOf(a), gatewayOf(b), true);
    }
};

} // namespace cellbw::eib

#endif // CELLBW_EIB_TOPOLOGY_HH
