/**
 * @file
 * PowerPC Processor Unit: the PPE's 2-way SMT in-order core and its
 * cache hierarchy timing.
 *
 * The model reproduces the mechanisms the paper identifies:
 *
 *  - a shared 1-op/cycle load/store issue port.  Scalar (<= 8 B)
 *    accesses issue every cycle; 128-bit VMX accesses take two, which
 *    is why 16 B loads show "no improvement" over 8 B loads while
 *    smaller elements scale down proportionally (Fig. 3);
 *  - a per-thread load-miss queue (LMQ) and a per-thread refill request
 *    interval.  The request interval — not the target latency — caps
 *    streaming refill bandwidth, which is why memory reads measure the
 *    same as L2 reads and why a second thread "significantly" helps
 *    (Figs. 4/6, paper: "limited ... possibly by the number of pending
 *    L1 cache misses");
 *  - a write-through L1 with per-store gather entries draining to the
 *    L2 store queue.  Stores are entry-rate-limited, so store bandwidth
 *    stays proportional to element size all the way to 16 B, trails L1
 *    loads, and beats L2 loads roughly 2x for one thread (paper:
 *    "the L2 store queue could be this limiting structure");
 *  - L2 write-allocate plus a shared L2-to-memory writeback queue that
 *    saturates quickly, making memory stores the slowest path of all
 *    (Fig. 6).
 */

#ifndef CELLBW_PPE_PPU_HH
#define CELLBW_PPE_PPU_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/backing_store.hh"
#include "ppe/cache.hh"
#include "sim/clock.hh"
#include "sim/sim_object.hh"
#include "sim/task.hh"

namespace cellbw::stats
{
class MetricsRegistry;
} // namespace cellbw::stats

namespace cellbw::ppe
{

struct PpuParams
{
    CacheParams l1{32 * 1024, 128, 8};
    CacheParams l2{512 * 1024, 128, 8};

    /** @name Issue costs on the shared 1-op/cycle port. */
    /** @{ */
    unsigned scalarLoadCycles = 1;
    unsigned vmxLoadCycles = 2;
    unsigned scalarStoreCycles = 1;
    unsigned vmxStoreCycles = 2;
    /** @} */

    /** Outstanding line refills per thread. */
    unsigned lmqEntries = 8;

    /** Per-thread ticks between successive refill requests. */
    Tick missRequestInterval = 64;

    Tick l2Latency = 40;
    Tick memLatency = 440;

    /** Store-gather drain, ticks per entry (one entry per store op). */
    Tick storeDrainHit = 3;     ///< line present in L1
    Tick storeDrainMiss = 4;    ///< line not in L1 (straight to L2 queue)

    /** Lines a thread may run ahead of its store drain. */
    unsigned storeQueueLines = 4;

    /** Shared L2-to-memory writeback: ticks per dirty line. */
    Tick wbInterval = 80;
    unsigned wbQueueLines = 4;
};

/** The three access kernels of the paper's PPE experiments. */
enum class MemOp { Load, Store, Copy };

class Ppu : public sim::SimObject
{
  public:
    static constexpr unsigned numThreads = 2;

    Ppu(std::string name, sim::EventQueue &eq, const sim::ClockSpec &clock,
        const PpuParams &params, mem::BackingStore *store = nullptr);

    /**
     * Stream @p op over @p bytes with @p elemSize-byte accesses on
     * hardware thread @p tid.  For Copy, @p src is read and @p dst
     * written; otherwise only @p src is used.  If @p bytesCounted is
     * given it accumulates the bytes the paper's metric counts (2x for
     * copy).
     */
    sim::Task streamAccess(unsigned tid, EffAddr src, EffAddr dst,
                           std::uint64_t bytes, unsigned elemSize, MemOp op,
                           std::uint64_t *bytesCounted = nullptr);

    /**
     * Warm-up lap: install the buffer in the hierarchy without timing
     * (the paper always performs one to dodge TLB misses/page faults).
     */
    void warm(EffAddr base, std::uint64_t bytes);

    CacheArray &l1() { return *l1_; }
    CacheArray &l2() { return *l2_; }

    /**
     * Accumulate the PPE cache counters into @p reg under
     * `<prefix>.l1.*` / `<prefix>.l2.*` (hits, misses, evictions).
     */
    void registerMetrics(stats::MetricsRegistry &reg,
                         const std::string &prefix) const;

  private:
    struct ThreadState
    {
        std::vector<Tick> lmq;
        std::size_t lmqSlot = 0;
        Tick reqFreeAt = 0;
        Tick storeFreeAt = 0;
    };

    unsigned loadCost(unsigned elemSize) const;
    unsigned storeCost(unsigned elemSize) const;

    sim::ClockSpec clock_;
    PpuParams params_;
    mem::BackingStore *store_;
    std::unique_ptr<CacheArray> l1_;
    std::unique_ptr<CacheArray> l2_;
    ThreadState threads_[numThreads];
    Tick issueFreeAt_ = 0;   // shared load/store issue port
    Tick wbFreeAt_ = 0;      // shared writeback queue
};

} // namespace cellbw::ppe

#endif // CELLBW_PPE_PPU_HH
