#include "ppe/ppu.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "stats/metrics.hh"
#include "util/align.hh"

namespace cellbw::ppe
{

Ppu::Ppu(std::string name, sim::EventQueue &eq, const sim::ClockSpec &clock,
         const PpuParams &params, mem::BackingStore *store)
    : sim::SimObject(std::move(name), eq), clock_(clock), params_(params),
      store_(store)
{
    if (params_.l1.lineBytes != params_.l2.lineBytes)
        sim::fatal("%s: L1/L2 line sizes must match", this->name().c_str());
    if (params_.l1.lineBytes > 256)
        sim::fatal("%s: line size above 256 bytes unsupported",
                   this->name().c_str());
    l1_ = std::make_unique<CacheArray>(params_.l1);
    l2_ = std::make_unique<CacheArray>(params_.l2);
    for (auto &t : threads_)
        t.lmq.assign(params_.lmqEntries, 0);
}

unsigned
Ppu::loadCost(unsigned elemSize) const
{
    return elemSize >= 16 ? params_.vmxLoadCycles
                          : params_.scalarLoadCycles;
}

unsigned
Ppu::storeCost(unsigned elemSize) const
{
    return elemSize >= 16 ? params_.vmxStoreCycles
                          : params_.scalarStoreCycles;
}

void
Ppu::warm(EffAddr base, std::uint64_t bytes)
{
    std::uint32_t line = params_.l1.lineBytes;
    for (EffAddr ea = util::roundDown(base, line); ea < base + bytes;
         ea += line) {
        l2_->insert(ea, false);
        l1_->insert(ea, false);
    }
}

sim::Task
Ppu::streamAccess(unsigned tid, EffAddr src, EffAddr dst,
                  std::uint64_t bytes, unsigned elemSize, MemOp op,
                  std::uint64_t *bytesCounted)
{
    if (tid >= numThreads)
        sim::fatal("%s: thread id %u out of range", name().c_str(), tid);
    if (elemSize != 1 && elemSize != 2 && elemSize != 4 && elemSize != 8 &&
        elemSize != 16) {
        sim::fatal("%s: element size %u not in {1,2,4,8,16}",
                   name().c_str(), elemSize);
    }
    const std::uint32_t line = params_.l1.lineBytes;
    if (bytes % line != 0)
        sim::fatal("%s: stream length must be line-aligned", name().c_str());

    ThreadState &t = threads_[tid];
    const bool do_load = (op == MemOp::Load || op == MemOp::Copy);
    const bool do_store = (op == MemOp::Store || op == MemOp::Copy);
    const unsigned ops = line / elemSize;

    unsigned issue_per_line = 0;
    if (do_load)
        issue_per_line += ops * loadCost(elemSize);
    if (do_store)
        issue_per_line += ops * storeCost(elemSize);

    for (std::uint64_t off = 0; off < bytes; off += line) {
        // --- Issue phase: the shared 1-op/cycle load/store port. ---
        Tick istart = std::max(curTick(), issueFreeAt_);
        issueFreeAt_ = istart + issue_per_line;
        if (issueFreeAt_ > curTick())
            co_await sim::WaitUntil{eventQueue(), issueFreeAt_};

        // --- Load refill path. ---
        if (do_load) {
            EffAddr lea = src + off;
            if (!l1_->access(lea)) {
                // Stall while our LMQ slot is still in flight.
                Tick slot_free = t.lmq[t.lmqSlot];
                if (slot_free > curTick())
                    co_await sim::WaitUntil{eventQueue(), slot_free};
                Tick req = std::max(curTick(), t.reqFreeAt);
                t.reqFreeAt = req + params_.missRequestInterval;
                bool in_l2 = l2_->access(lea);
                Tick lat = in_l2 ? params_.l2Latency : params_.memLatency;
                t.lmq[t.lmqSlot] = req + lat;
                t.lmqSlot = (t.lmqSlot + 1) % params_.lmqEntries;
                l1_->insert(lea, false);
                if (!in_l2 && l2_->insert(lea, false)) {
                    // Dirty victim: writeback credit.
                    wbFreeAt_ = std::max(curTick(), wbFreeAt_) +
                                params_.wbInterval;
                }
            }
        }

        // --- Store path: write-through L1 with gather entries. ---
        if (do_store) {
            EffAddr sea = dst + off;
            bool l1_hit = l1_->access(sea);
            if (!l2_->touchDirty(sea)) {
                // Write-allocate: fetch the line into L2 first.
                Tick slot_free = t.lmq[t.lmqSlot];
                if (slot_free > curTick())
                    co_await sim::WaitUntil{eventQueue(), slot_free};
                Tick req = std::max(curTick(), t.reqFreeAt);
                t.reqFreeAt = req + params_.missRequestInterval;
                t.lmq[t.lmqSlot] = req + params_.memLatency;
                t.lmqSlot = (t.lmqSlot + 1) % params_.lmqEntries;
                if (l2_->insert(sea, true)) {
                    wbFreeAt_ = std::max(curTick(), wbFreeAt_) +
                                params_.wbInterval;
                }
            }
            Tick drain = l1_hit ? params_.storeDrainHit
                                : params_.storeDrainMiss;
            Tick line_drain = ops * drain;
            t.storeFreeAt = std::max(t.storeFreeAt, curTick()) + line_drain;
            Tick slack = params_.storeQueueLines * line_drain;
            if (t.storeFreeAt > curTick() + slack) {
                co_await sim::WaitUntil{eventQueue(),
                                        t.storeFreeAt - slack};
            }
            // Shared writeback queue backpressure.
            Tick wb_slack = params_.wbQueueLines * params_.wbInterval;
            if (wbFreeAt_ > curTick() + wb_slack) {
                co_await sim::WaitUntil{eventQueue(),
                                        wbFreeAt_ - wb_slack};
            }
        }

        // --- Data movement (copy only; loads/stores have no visible
        //     side effect beyond timing). ---
        if (op == MemOp::Copy && store_) {
            std::uint8_t buf[256];
            store_->read(src + off, buf, line);
            store_->write(dst + off, buf, line);
        }

        if (bytesCounted)
            *bytesCounted += (op == MemOp::Copy) ? 2ull * line : line;
    }

    // Drain: wait for outstanding refills and the store pipe.
    Tick drain_to = curTick();
    for (Tick c : t.lmq)
        drain_to = std::max(drain_to, c);
    drain_to = std::max(drain_to, t.storeFreeAt);
    if (do_store)
        drain_to = std::max(drain_to, wbFreeAt_);
    if (drain_to > curTick())
        co_await sim::WaitUntil{eventQueue(), drain_to};
}

void
Ppu::registerMetrics(stats::MetricsRegistry &reg,
                     const std::string &prefix) const
{
    const CacheArray *levels[] = {l1_.get(), l2_.get()};
    const char *names[] = {".l1", ".l2"};
    for (unsigned i = 0; i < 2; ++i) {
        std::string base = prefix + names[i];
        reg.counter(base + ".hits").add(levels[i]->hits());
        reg.counter(base + ".misses").add(levels[i]->misses());
        reg.counter(base + ".evictions").add(levels[i]->evictions());
    }
}

} // namespace cellbw::ppe
