/**
 * @file
 * Set-associative cache tag array with LRU replacement.
 *
 * Used for the PPE's 32 KB L1D and 512 KB L2.  Only tags matter for the
 * bandwidth model (data moves through the backing store); the arrays
 * give real residency behaviour, so where a buffer fits decides which
 * level's timing the sweep sees — exactly how the paper's experiments
 * select L1 / L2 / memory.
 */

#ifndef CELLBW_PPE_CACHE_HH
#define CELLBW_PPE_CACHE_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace cellbw::ppe
{

struct CacheParams
{
    std::uint32_t sizeBytes;
    std::uint32_t lineBytes = 128;
    std::uint32_t assoc = 8;
};

class CacheArray
{
  public:
    explicit CacheArray(const CacheParams &params);

    std::uint32_t lineBytes() const { return params_.lineBytes; }
    std::uint32_t numSets() const { return numSets_; }

    /**
     * Look up the line containing @p ea; updates LRU on hit.
     * @return true on hit.
     */
    bool access(EffAddr ea);

    /** Tag check without LRU update. */
    bool contains(EffAddr ea) const;

    /**
     * Install the line containing @p ea (no-op if present; marks dirty
     * if @p dirty).
     * @return true iff a *dirty* victim was evicted.
     */
    bool insert(EffAddr ea, bool dirty = false);

    /** Mark the line dirty if present; @return true iff it was present. */
    bool touchDirty(EffAddr ea);

    void invalidateAll();

    /** @name Statistics. */
    /** @{ */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    /** @} */

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::uint64_t lineOf(EffAddr ea) const { return ea / params_.lineBytes; }
    std::uint32_t setOf(std::uint64_t line) const
    {
        return static_cast<std::uint32_t>(line % numSets_);
    }

    Way *find(EffAddr ea);
    const Way *find(EffAddr ea) const;

    CacheParams params_;
    std::uint32_t numSets_;
    std::vector<Way> ways_;     // numSets_ * assoc, row-major by set
    std::uint64_t clock_ = 0;   // LRU timestamp source
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace cellbw::ppe

#endif // CELLBW_PPE_CACHE_HH
