#include "ppe/cache.hh"

#include "sim/logging.hh"
#include "util/align.hh"

namespace cellbw::ppe
{

CacheArray::CacheArray(const CacheParams &params)
    : params_(params)
{
    if (!util::isPow2(params_.lineBytes))
        sim::fatal("cache line size must be a power of two");
    if (params_.assoc == 0 || params_.sizeBytes == 0)
        sim::fatal("cache must have positive size and associativity");
    std::uint64_t lines = params_.sizeBytes / params_.lineBytes;
    if (lines < params_.assoc || lines % params_.assoc != 0)
        sim::fatal("cache size not divisible into sets");
    numSets_ = static_cast<std::uint32_t>(lines / params_.assoc);
    ways_.resize(lines);
}

CacheArray::Way *
CacheArray::find(EffAddr ea)
{
    std::uint64_t line = lineOf(ea);
    std::uint32_t set = setOf(line);
    Way *base = &ways_[static_cast<std::size_t>(set) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w)
        if (base[w].valid && base[w].tag == line)
            return &base[w];
    return nullptr;
}

const CacheArray::Way *
CacheArray::find(EffAddr ea) const
{
    return const_cast<CacheArray *>(this)->find(ea);
}

bool
CacheArray::access(EffAddr ea)
{
    if (Way *w = find(ea)) {
        w->lru = ++clock_;
        ++hits_;
        return true;
    }
    ++misses_;
    return false;
}

bool
CacheArray::contains(EffAddr ea) const
{
    return find(ea) != nullptr;
}

bool
CacheArray::insert(EffAddr ea, bool dirty)
{
    if (Way *w = find(ea)) {
        w->lru = ++clock_;
        w->dirty = w->dirty || dirty;
        return false;
    }
    std::uint64_t line = lineOf(ea);
    std::uint32_t set = setOf(line);
    Way *base = &ways_[static_cast<std::size_t>(set) * params_.assoc];
    Way *victim = &base[0];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lru < victim->lru)
            victim = &base[w];
    }
    bool dirty_evict = victim->valid && victim->dirty;
    if (victim->valid)
        ++evictions_;
    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = line;
    victim->lru = ++clock_;
    return dirty_evict;
}

bool
CacheArray::touchDirty(EffAddr ea)
{
    if (Way *w = find(ea)) {
        w->dirty = true;
        w->lru = ++clock_;
        return true;
    }
    return false;
}

void
CacheArray::invalidateAll()
{
    for (auto &w : ways_)
        w = Way{};
}

} // namespace cellbw::ppe
