file(REMOVE_RECURSE
  "libcellbw_eib.a"
)
