file(REMOVE_RECURSE
  "CMakeFiles/cellbw_eib.dir/eib.cc.o"
  "CMakeFiles/cellbw_eib.dir/eib.cc.o.d"
  "CMakeFiles/cellbw_eib.dir/ring.cc.o"
  "CMakeFiles/cellbw_eib.dir/ring.cc.o.d"
  "libcellbw_eib.a"
  "libcellbw_eib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellbw_eib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
