
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eib/eib.cc" "src/eib/CMakeFiles/cellbw_eib.dir/eib.cc.o" "gcc" "src/eib/CMakeFiles/cellbw_eib.dir/eib.cc.o.d"
  "/root/repo/src/eib/ring.cc" "src/eib/CMakeFiles/cellbw_eib.dir/ring.cc.o" "gcc" "src/eib/CMakeFiles/cellbw_eib.dir/ring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cellbw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cellbw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cellbw_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
