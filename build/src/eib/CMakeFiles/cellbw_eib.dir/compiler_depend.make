# Empty compiler generated dependencies file for cellbw_eib.
# This may be replaced when dependencies are built.
