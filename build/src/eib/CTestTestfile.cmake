# CMake generated Testfile for 
# Source directory: /root/repo/src/eib
# Build directory: /root/repo/build/src/eib
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
