# Empty dependencies file for cellbw_trace.
# This may be replaced when dependencies are built.
