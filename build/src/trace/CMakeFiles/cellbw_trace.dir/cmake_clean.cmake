file(REMOVE_RECURSE
  "CMakeFiles/cellbw_trace.dir/recorder.cc.o"
  "CMakeFiles/cellbw_trace.dir/recorder.cc.o.d"
  "libcellbw_trace.a"
  "libcellbw_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellbw_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
