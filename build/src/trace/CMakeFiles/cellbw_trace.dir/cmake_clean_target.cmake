file(REMOVE_RECURSE
  "libcellbw_trace.a"
)
