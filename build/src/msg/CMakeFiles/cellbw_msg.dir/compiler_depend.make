# Empty compiler generated dependencies file for cellbw_msg.
# This may be replaced when dependencies are built.
