file(REMOVE_RECURSE
  "CMakeFiles/cellbw_msg.dir/communicator.cc.o"
  "CMakeFiles/cellbw_msg.dir/communicator.cc.o.d"
  "libcellbw_msg.a"
  "libcellbw_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellbw_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
