file(REMOVE_RECURSE
  "libcellbw_msg.a"
)
