
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppe/cache.cc" "src/ppe/CMakeFiles/cellbw_ppe.dir/cache.cc.o" "gcc" "src/ppe/CMakeFiles/cellbw_ppe.dir/cache.cc.o.d"
  "/root/repo/src/ppe/ppu.cc" "src/ppe/CMakeFiles/cellbw_ppe.dir/ppu.cc.o" "gcc" "src/ppe/CMakeFiles/cellbw_ppe.dir/ppu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cellbw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cellbw_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cellbw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
