file(REMOVE_RECURSE
  "CMakeFiles/cellbw_ppe.dir/cache.cc.o"
  "CMakeFiles/cellbw_ppe.dir/cache.cc.o.d"
  "CMakeFiles/cellbw_ppe.dir/ppu.cc.o"
  "CMakeFiles/cellbw_ppe.dir/ppu.cc.o.d"
  "libcellbw_ppe.a"
  "libcellbw_ppe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellbw_ppe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
