# Empty dependencies file for cellbw_ppe.
# This may be replaced when dependencies are built.
