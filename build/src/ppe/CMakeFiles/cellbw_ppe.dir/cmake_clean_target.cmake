file(REMOVE_RECURSE
  "libcellbw_ppe.a"
)
