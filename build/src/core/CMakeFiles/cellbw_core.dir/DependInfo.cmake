
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cc" "src/core/CMakeFiles/cellbw_core.dir/advisor.cc.o" "gcc" "src/core/CMakeFiles/cellbw_core.dir/advisor.cc.o.d"
  "/root/repo/src/core/dma_workloads.cc" "src/core/CMakeFiles/cellbw_core.dir/dma_workloads.cc.o" "gcc" "src/core/CMakeFiles/cellbw_core.dir/dma_workloads.cc.o.d"
  "/root/repo/src/core/experiments.cc" "src/core/CMakeFiles/cellbw_core.dir/experiments.cc.o" "gcc" "src/core/CMakeFiles/cellbw_core.dir/experiments.cc.o.d"
  "/root/repo/src/core/kernels.cc" "src/core/CMakeFiles/cellbw_core.dir/kernels.cc.o" "gcc" "src/core/CMakeFiles/cellbw_core.dir/kernels.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/cellbw_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/cellbw_core.dir/report.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/core/CMakeFiles/cellbw_core.dir/runner.cc.o" "gcc" "src/core/CMakeFiles/cellbw_core.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cell/CMakeFiles/cellbw_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cellbw_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cellbw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cellbw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/eib/CMakeFiles/cellbw_eib.dir/DependInfo.cmake"
  "/root/repo/build/src/spe/CMakeFiles/cellbw_spe.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cellbw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ppe/CMakeFiles/cellbw_ppe.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cellbw_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
