file(REMOVE_RECURSE
  "libcellbw_core.a"
)
