file(REMOVE_RECURSE
  "CMakeFiles/cellbw_core.dir/advisor.cc.o"
  "CMakeFiles/cellbw_core.dir/advisor.cc.o.d"
  "CMakeFiles/cellbw_core.dir/dma_workloads.cc.o"
  "CMakeFiles/cellbw_core.dir/dma_workloads.cc.o.d"
  "CMakeFiles/cellbw_core.dir/experiments.cc.o"
  "CMakeFiles/cellbw_core.dir/experiments.cc.o.d"
  "CMakeFiles/cellbw_core.dir/kernels.cc.o"
  "CMakeFiles/cellbw_core.dir/kernels.cc.o.d"
  "CMakeFiles/cellbw_core.dir/report.cc.o"
  "CMakeFiles/cellbw_core.dir/report.cc.o.d"
  "CMakeFiles/cellbw_core.dir/runner.cc.o"
  "CMakeFiles/cellbw_core.dir/runner.cc.o.d"
  "libcellbw_core.a"
  "libcellbw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellbw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
