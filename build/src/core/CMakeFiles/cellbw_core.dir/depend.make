# Empty dependencies file for cellbw_core.
# This may be replaced when dependencies are built.
