# Empty dependencies file for cellbw_runtime.
# This may be replaced when dependencies are built.
