file(REMOVE_RECURSE
  "libcellbw_runtime.a"
)
