file(REMOVE_RECURSE
  "CMakeFiles/cellbw_runtime.dir/offload.cc.o"
  "CMakeFiles/cellbw_runtime.dir/offload.cc.o.d"
  "CMakeFiles/cellbw_runtime.dir/software_cache.cc.o"
  "CMakeFiles/cellbw_runtime.dir/software_cache.cc.o.d"
  "libcellbw_runtime.a"
  "libcellbw_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellbw_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
