file(REMOVE_RECURSE
  "CMakeFiles/cellbw_cell.dir/cell_system.cc.o"
  "CMakeFiles/cellbw_cell.dir/cell_system.cc.o.d"
  "CMakeFiles/cellbw_cell.dir/config.cc.o"
  "CMakeFiles/cellbw_cell.dir/config.cc.o.d"
  "CMakeFiles/cellbw_cell.dir/stats_report.cc.o"
  "CMakeFiles/cellbw_cell.dir/stats_report.cc.o.d"
  "libcellbw_cell.a"
  "libcellbw_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellbw_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
