file(REMOVE_RECURSE
  "libcellbw_cell.a"
)
