# Empty dependencies file for cellbw_cell.
# This may be replaced when dependencies are built.
