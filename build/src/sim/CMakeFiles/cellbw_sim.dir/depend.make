# Empty dependencies file for cellbw_sim.
# This may be replaced when dependencies are built.
