file(REMOVE_RECURSE
  "libcellbw_sim.a"
)
