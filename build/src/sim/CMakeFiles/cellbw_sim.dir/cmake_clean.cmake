file(REMOVE_RECURSE
  "CMakeFiles/cellbw_sim.dir/event_queue.cc.o"
  "CMakeFiles/cellbw_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/cellbw_sim.dir/logging.cc.o"
  "CMakeFiles/cellbw_sim.dir/logging.cc.o.d"
  "libcellbw_sim.a"
  "libcellbw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellbw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
