file(REMOVE_RECURSE
  "libcellbw_spe.a"
)
