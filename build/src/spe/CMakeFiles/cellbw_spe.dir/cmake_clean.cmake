file(REMOVE_RECURSE
  "CMakeFiles/cellbw_spe.dir/local_store.cc.o"
  "CMakeFiles/cellbw_spe.dir/local_store.cc.o.d"
  "CMakeFiles/cellbw_spe.dir/mailbox.cc.o"
  "CMakeFiles/cellbw_spe.dir/mailbox.cc.o.d"
  "CMakeFiles/cellbw_spe.dir/mfc.cc.o"
  "CMakeFiles/cellbw_spe.dir/mfc.cc.o.d"
  "CMakeFiles/cellbw_spe.dir/spe.cc.o"
  "CMakeFiles/cellbw_spe.dir/spe.cc.o.d"
  "CMakeFiles/cellbw_spe.dir/spu.cc.o"
  "CMakeFiles/cellbw_spe.dir/spu.cc.o.d"
  "libcellbw_spe.a"
  "libcellbw_spe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellbw_spe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
