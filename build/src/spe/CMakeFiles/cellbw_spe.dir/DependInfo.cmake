
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spe/local_store.cc" "src/spe/CMakeFiles/cellbw_spe.dir/local_store.cc.o" "gcc" "src/spe/CMakeFiles/cellbw_spe.dir/local_store.cc.o.d"
  "/root/repo/src/spe/mailbox.cc" "src/spe/CMakeFiles/cellbw_spe.dir/mailbox.cc.o" "gcc" "src/spe/CMakeFiles/cellbw_spe.dir/mailbox.cc.o.d"
  "/root/repo/src/spe/mfc.cc" "src/spe/CMakeFiles/cellbw_spe.dir/mfc.cc.o" "gcc" "src/spe/CMakeFiles/cellbw_spe.dir/mfc.cc.o.d"
  "/root/repo/src/spe/spe.cc" "src/spe/CMakeFiles/cellbw_spe.dir/spe.cc.o" "gcc" "src/spe/CMakeFiles/cellbw_spe.dir/spe.cc.o.d"
  "/root/repo/src/spe/spu.cc" "src/spe/CMakeFiles/cellbw_spe.dir/spu.cc.o" "gcc" "src/spe/CMakeFiles/cellbw_spe.dir/spu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cellbw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cellbw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cellbw_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
