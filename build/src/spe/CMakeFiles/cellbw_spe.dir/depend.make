# Empty dependencies file for cellbw_spe.
# This may be replaced when dependencies are built.
