# CMake generated Testfile for 
# Source directory: /root/repo/src/spe
# Build directory: /root/repo/build/src/spe
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
