file(REMOVE_RECURSE
  "CMakeFiles/cellbw_util.dir/options.cc.o"
  "CMakeFiles/cellbw_util.dir/options.cc.o.d"
  "CMakeFiles/cellbw_util.dir/strings.cc.o"
  "CMakeFiles/cellbw_util.dir/strings.cc.o.d"
  "libcellbw_util.a"
  "libcellbw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellbw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
