file(REMOVE_RECURSE
  "libcellbw_util.a"
)
