# Empty compiler generated dependencies file for cellbw_util.
# This may be replaced when dependencies are built.
