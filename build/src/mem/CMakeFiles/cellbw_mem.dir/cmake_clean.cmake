file(REMOVE_RECURSE
  "CMakeFiles/cellbw_mem.dir/backing_store.cc.o"
  "CMakeFiles/cellbw_mem.dir/backing_store.cc.o.d"
  "CMakeFiles/cellbw_mem.dir/dram_bank.cc.o"
  "CMakeFiles/cellbw_mem.dir/dram_bank.cc.o.d"
  "CMakeFiles/cellbw_mem.dir/io_link.cc.o"
  "CMakeFiles/cellbw_mem.dir/io_link.cc.o.d"
  "CMakeFiles/cellbw_mem.dir/memory_system.cc.o"
  "CMakeFiles/cellbw_mem.dir/memory_system.cc.o.d"
  "CMakeFiles/cellbw_mem.dir/page_allocator.cc.o"
  "CMakeFiles/cellbw_mem.dir/page_allocator.cc.o.d"
  "libcellbw_mem.a"
  "libcellbw_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellbw_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
