
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/backing_store.cc" "src/mem/CMakeFiles/cellbw_mem.dir/backing_store.cc.o" "gcc" "src/mem/CMakeFiles/cellbw_mem.dir/backing_store.cc.o.d"
  "/root/repo/src/mem/dram_bank.cc" "src/mem/CMakeFiles/cellbw_mem.dir/dram_bank.cc.o" "gcc" "src/mem/CMakeFiles/cellbw_mem.dir/dram_bank.cc.o.d"
  "/root/repo/src/mem/io_link.cc" "src/mem/CMakeFiles/cellbw_mem.dir/io_link.cc.o" "gcc" "src/mem/CMakeFiles/cellbw_mem.dir/io_link.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/mem/CMakeFiles/cellbw_mem.dir/memory_system.cc.o" "gcc" "src/mem/CMakeFiles/cellbw_mem.dir/memory_system.cc.o.d"
  "/root/repo/src/mem/page_allocator.cc" "src/mem/CMakeFiles/cellbw_mem.dir/page_allocator.cc.o" "gcc" "src/mem/CMakeFiles/cellbw_mem.dir/page_allocator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cellbw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cellbw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
