file(REMOVE_RECURSE
  "libcellbw_mem.a"
)
