# Empty compiler generated dependencies file for cellbw_mem.
# This may be replaced when dependencies are built.
