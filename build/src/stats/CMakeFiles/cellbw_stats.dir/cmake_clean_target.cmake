file(REMOVE_RECURSE
  "libcellbw_stats.a"
)
