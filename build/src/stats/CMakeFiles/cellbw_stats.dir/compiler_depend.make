# Empty compiler generated dependencies file for cellbw_stats.
# This may be replaced when dependencies are built.
