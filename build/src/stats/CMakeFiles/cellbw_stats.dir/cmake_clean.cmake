file(REMOVE_RECURSE
  "CMakeFiles/cellbw_stats.dir/ascii_chart.cc.o"
  "CMakeFiles/cellbw_stats.dir/ascii_chart.cc.o.d"
  "CMakeFiles/cellbw_stats.dir/distribution.cc.o"
  "CMakeFiles/cellbw_stats.dir/distribution.cc.o.d"
  "CMakeFiles/cellbw_stats.dir/table.cc.o"
  "CMakeFiles/cellbw_stats.dir/table.cc.o.d"
  "libcellbw_stats.a"
  "libcellbw_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellbw_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
