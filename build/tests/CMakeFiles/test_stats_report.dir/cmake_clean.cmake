file(REMOVE_RECURSE
  "CMakeFiles/test_stats_report.dir/test_stats_report.cc.o"
  "CMakeFiles/test_stats_report.dir/test_stats_report.cc.o.d"
  "test_stats_report"
  "test_stats_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
