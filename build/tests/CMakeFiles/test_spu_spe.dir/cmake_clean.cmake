file(REMOVE_RECURSE
  "CMakeFiles/test_spu_spe.dir/test_spu_spe.cc.o"
  "CMakeFiles/test_spu_spe.dir/test_spu_spe.cc.o.d"
  "test_spu_spe"
  "test_spu_spe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spu_spe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
