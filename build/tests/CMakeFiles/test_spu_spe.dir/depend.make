# Empty dependencies file for test_spu_spe.
# This may be replaced when dependencies are built.
