
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_kernels.cc" "tests/CMakeFiles/test_kernels.dir/test_kernels.cc.o" "gcc" "tests/CMakeFiles/test_kernels.dir/test_kernels.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cellbw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/cellbw_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/eib/CMakeFiles/cellbw_eib.dir/DependInfo.cmake"
  "/root/repo/build/src/spe/CMakeFiles/cellbw_spe.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cellbw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ppe/CMakeFiles/cellbw_ppe.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cellbw_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cellbw_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cellbw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cellbw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
