file(REMOVE_RECURSE
  "CMakeFiles/test_dual_chip.dir/test_dual_chip.cc.o"
  "CMakeFiles/test_dual_chip.dir/test_dual_chip.cc.o.d"
  "test_dual_chip"
  "test_dual_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dual_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
