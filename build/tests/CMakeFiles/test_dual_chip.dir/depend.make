# Empty dependencies file for test_dual_chip.
# This may be replaced when dependencies are built.
