file(REMOVE_RECURSE
  "CMakeFiles/test_eib.dir/test_eib.cc.o"
  "CMakeFiles/test_eib.dir/test_eib.cc.o.d"
  "test_eib"
  "test_eib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
