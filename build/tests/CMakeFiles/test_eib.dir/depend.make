# Empty dependencies file for test_eib.
# This may be replaced when dependencies are built.
