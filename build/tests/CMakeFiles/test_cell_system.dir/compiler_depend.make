# Empty compiler generated dependencies file for test_cell_system.
# This may be replaced when dependencies are built.
