file(REMOVE_RECURSE
  "CMakeFiles/test_cell_system.dir/test_cell_system.cc.o"
  "CMakeFiles/test_cell_system.dir/test_cell_system.cc.o.d"
  "test_cell_system"
  "test_cell_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cell_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
