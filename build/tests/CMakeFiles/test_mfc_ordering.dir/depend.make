# Empty dependencies file for test_mfc_ordering.
# This may be replaced when dependencies are built.
