file(REMOVE_RECURSE
  "CMakeFiles/test_mfc_ordering.dir/test_mfc_ordering.cc.o"
  "CMakeFiles/test_mfc_ordering.dir/test_mfc_ordering.cc.o.d"
  "test_mfc_ordering"
  "test_mfc_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mfc_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
