file(REMOVE_RECURSE
  "CMakeFiles/test_advisor_report.dir/test_advisor_report.cc.o"
  "CMakeFiles/test_advisor_report.dir/test_advisor_report.cc.o.d"
  "test_advisor_report"
  "test_advisor_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_advisor_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
