file(REMOVE_RECURSE
  "CMakeFiles/test_local_store.dir/test_local_store.cc.o"
  "CMakeFiles/test_local_store.dir/test_local_store.cc.o.d"
  "test_local_store"
  "test_local_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_local_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
