# Empty dependencies file for test_local_store.
# This may be replaced when dependencies are built.
