file(REMOVE_RECURSE
  "CMakeFiles/test_mfc.dir/test_mfc.cc.o"
  "CMakeFiles/test_mfc.dir/test_mfc.cc.o.d"
  "test_mfc"
  "test_mfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
