file(REMOVE_RECURSE
  "CMakeFiles/test_util_lib.dir/test_util_lib.cc.o"
  "CMakeFiles/test_util_lib.dir/test_util_lib.cc.o.d"
  "test_util_lib"
  "test_util_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
