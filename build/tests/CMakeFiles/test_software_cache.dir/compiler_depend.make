# Empty compiler generated dependencies file for test_software_cache.
# This may be replaced when dependencies are built.
