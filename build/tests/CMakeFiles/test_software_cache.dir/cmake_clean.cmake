file(REMOVE_RECURSE
  "CMakeFiles/test_software_cache.dir/test_software_cache.cc.o"
  "CMakeFiles/test_software_cache.dir/test_software_cache.cc.o.d"
  "test_software_cache"
  "test_software_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_software_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
