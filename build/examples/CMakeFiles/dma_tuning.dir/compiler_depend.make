# Empty compiler generated dependencies file for dma_tuning.
# This may be replaced when dependencies are built.
