file(REMOVE_RECURSE
  "CMakeFiles/dma_tuning.dir/dma_tuning.cpp.o"
  "CMakeFiles/dma_tuning.dir/dma_tuning.cpp.o.d"
  "dma_tuning"
  "dma_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dma_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
