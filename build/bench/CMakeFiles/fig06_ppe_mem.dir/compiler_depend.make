# Empty compiler generated dependencies file for fig06_ppe_mem.
# This may be replaced when dependencies are built.
