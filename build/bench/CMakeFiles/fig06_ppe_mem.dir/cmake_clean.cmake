file(REMOVE_RECURSE
  "CMakeFiles/fig06_ppe_mem.dir/fig06_ppe_mem.cpp.o"
  "CMakeFiles/fig06_ppe_mem.dir/fig06_ppe_mem.cpp.o.d"
  "fig06_ppe_mem"
  "fig06_ppe_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_ppe_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
