file(REMOVE_RECURSE
  "CMakeFiles/abl_cmd_overhead.dir/abl_cmd_overhead.cpp.o"
  "CMakeFiles/abl_cmd_overhead.dir/abl_cmd_overhead.cpp.o.d"
  "abl_cmd_overhead"
  "abl_cmd_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cmd_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
