# Empty dependencies file for abl_cmd_overhead.
# This may be replaced when dependencies are built.
