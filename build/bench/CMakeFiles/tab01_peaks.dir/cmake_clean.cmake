file(REMOVE_RECURSE
  "CMakeFiles/tab01_peaks.dir/tab01_peaks.cpp.o"
  "CMakeFiles/tab01_peaks.dir/tab01_peaks.cpp.o.d"
  "tab01_peaks"
  "tab01_peaks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_peaks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
