# Empty compiler generated dependencies file for tab01_peaks.
# This may be replaced when dependencies are built.
