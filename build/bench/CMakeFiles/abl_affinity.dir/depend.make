# Empty dependencies file for abl_affinity.
# This may be replaced when dependencies are built.
