file(REMOVE_RECURSE
  "CMakeFiles/abl_affinity.dir/abl_affinity.cpp.o"
  "CMakeFiles/abl_affinity.dir/abl_affinity.cpp.o.d"
  "abl_affinity"
  "abl_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
