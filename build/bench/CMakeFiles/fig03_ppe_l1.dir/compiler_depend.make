# Empty compiler generated dependencies file for fig03_ppe_l1.
# This may be replaced when dependencies are built.
