file(REMOVE_RECURSE
  "CMakeFiles/fig03_ppe_l1.dir/fig03_ppe_l1.cpp.o"
  "CMakeFiles/fig03_ppe_l1.dir/fig03_ppe_l1.cpp.o.d"
  "fig03_ppe_l1"
  "fig03_ppe_l1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_ppe_l1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
