# Empty dependencies file for fig10_sync_sweep.
# This may be replaced when dependencies are built.
