# Empty compiler generated dependencies file for kernels_roofline.
# This may be replaced when dependencies are built.
