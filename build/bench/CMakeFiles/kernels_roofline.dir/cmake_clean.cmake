file(REMOVE_RECURSE
  "CMakeFiles/kernels_roofline.dir/kernels_roofline.cpp.o"
  "CMakeFiles/kernels_roofline.dir/kernels_roofline.cpp.o.d"
  "kernels_roofline"
  "kernels_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
