file(REMOVE_RECURSE
  "CMakeFiles/fig16_cycle_dist.dir/fig16_cycle_dist.cpp.o"
  "CMakeFiles/fig16_cycle_dist.dir/fig16_cycle_dist.cpp.o.d"
  "fig16_cycle_dist"
  "fig16_cycle_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_cycle_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
