# Empty compiler generated dependencies file for fig16_cycle_dist.
# This may be replaced when dependencies are built.
