file(REMOVE_RECURSE
  "CMakeFiles/fig04_ppe_l2.dir/fig04_ppe_l2.cpp.o"
  "CMakeFiles/fig04_ppe_l2.dir/fig04_ppe_l2.cpp.o.d"
  "fig04_ppe_l2"
  "fig04_ppe_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_ppe_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
