# Empty compiler generated dependencies file for fig04_ppe_l2.
# This may be replaced when dependencies are built.
