# Empty dependencies file for ls_spu_ls.
# This may be replaced when dependencies are built.
