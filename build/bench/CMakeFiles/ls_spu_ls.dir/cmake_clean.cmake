file(REMOVE_RECURSE
  "CMakeFiles/ls_spu_ls.dir/ls_spu_ls.cpp.o"
  "CMakeFiles/ls_spu_ls.dir/ls_spu_ls.cpp.o.d"
  "ls_spu_ls"
  "ls_spu_ls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_spu_ls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
