# Empty compiler generated dependencies file for fig12_couples.
# This may be replaced when dependencies are built.
