file(REMOVE_RECURSE
  "CMakeFiles/fig12_couples.dir/fig12_couples.cpp.o"
  "CMakeFiles/fig12_couples.dir/fig12_couples.cpp.o.d"
  "fig12_couples"
  "fig12_couples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_couples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
