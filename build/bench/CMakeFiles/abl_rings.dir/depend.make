# Empty dependencies file for abl_rings.
# This may be replaced when dependencies are built.
