file(REMOVE_RECURSE
  "CMakeFiles/abl_rings.dir/abl_rings.cpp.o"
  "CMakeFiles/abl_rings.dir/abl_rings.cpp.o.d"
  "abl_rings"
  "abl_rings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
