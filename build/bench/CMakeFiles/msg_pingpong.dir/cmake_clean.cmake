file(REMOVE_RECURSE
  "CMakeFiles/msg_pingpong.dir/msg_pingpong.cpp.o"
  "CMakeFiles/msg_pingpong.dir/msg_pingpong.cpp.o.d"
  "msg_pingpong"
  "msg_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msg_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
