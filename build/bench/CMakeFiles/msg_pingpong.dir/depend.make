# Empty dependencies file for msg_pingpong.
# This may be replaced when dependencies are built.
