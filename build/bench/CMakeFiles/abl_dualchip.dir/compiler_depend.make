# Empty compiler generated dependencies file for abl_dualchip.
# This may be replaced when dependencies are built.
