file(REMOVE_RECURSE
  "CMakeFiles/abl_dualchip.dir/abl_dualchip.cpp.o"
  "CMakeFiles/abl_dualchip.dir/abl_dualchip.cpp.o.d"
  "abl_dualchip"
  "abl_dualchip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dualchip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
