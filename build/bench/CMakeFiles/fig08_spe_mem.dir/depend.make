# Empty dependencies file for fig08_spe_mem.
# This may be replaced when dependencies are built.
