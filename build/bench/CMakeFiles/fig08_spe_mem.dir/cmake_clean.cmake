file(REMOVE_RECURSE
  "CMakeFiles/fig08_spe_mem.dir/fig08_spe_mem.cpp.o"
  "CMakeFiles/fig08_spe_mem.dir/fig08_spe_mem.cpp.o.d"
  "fig08_spe_mem"
  "fig08_spe_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_spe_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
