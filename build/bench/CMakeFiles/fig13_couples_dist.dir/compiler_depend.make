# Empty compiler generated dependencies file for fig13_couples_dist.
# This may be replaced when dependencies are built.
