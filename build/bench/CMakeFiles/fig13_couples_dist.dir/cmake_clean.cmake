file(REMOVE_RECURSE
  "CMakeFiles/fig13_couples_dist.dir/fig13_couples_dist.cpp.o"
  "CMakeFiles/fig13_couples_dist.dir/fig13_couples_dist.cpp.o.d"
  "fig13_couples_dist"
  "fig13_couples_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_couples_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
