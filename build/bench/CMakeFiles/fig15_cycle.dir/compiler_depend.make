# Empty compiler generated dependencies file for fig15_cycle.
# This may be replaced when dependencies are built.
