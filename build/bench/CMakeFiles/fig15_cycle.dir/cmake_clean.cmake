file(REMOVE_RECURSE
  "CMakeFiles/fig15_cycle.dir/fig15_cycle.cpp.o"
  "CMakeFiles/fig15_cycle.dir/fig15_cycle.cpp.o.d"
  "fig15_cycle"
  "fig15_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
